(* The domain pool and everything layered on it.  The determinism
   contract under test: parallel map/for/reduce and the row-partitioned
   kernels are bit-identical at every pool size, window scans are a
   function of (jobs, steps) only, and indexed RNG streams are exactly
   the sequential split streams.  All of it must hold on a pool larger
   than the machine (the CI runners differ), so pools here are sized
   explicitly, never from the core count. *)

module Pool = Tmest_parallel.Pool
module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Rng = Tmest_stats.Rng
module Ctx = Tmest_experiments.Ctx
module Workspace = Tmest_core.Workspace
module Estimator = Tmest_core.Estimator

let with_pool jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let scan_busy ?opts net est ~window ~steps =
  Ctx.Scan.run net est (Ctx.Scan.make ?opts (Ctx.Scan.Busy { window; steps }))

let check_bits name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
        Alcotest.failf "%s: slot %d differs (%.17g vs %.17g)" name i x b.(i))
    a

(* ------------------------------------------------------------- pool *)

let test_map_matches_sequential () =
  let input = Array.init 257 (fun i -> i) in
  let f i = float_of_int (i * i) +. (1. /. float_of_int (i + 1)) in
  let expect = Array.map f input in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          check_bits
            (Printf.sprintf "map at %d jobs" jobs)
            expect (Pool.map pool f input)))
    [ 1; 4 ]

let test_map_edge_sizes () =
  with_pool 4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map pool succ [||]);
      Alcotest.(check (array int)) "one task" [| 8 |]
        (Pool.map pool succ [| 7 |]))

let test_for_covers_every_index () =
  let n = 1000 in
  with_pool 3 (fun pool ->
      let hits = Array.make n (Atomic.make 0) in
      for i = 0 to n - 1 do
        hits.(i) <- Atomic.make 0
      done;
      Pool.parallel_for pool ~n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i c ->
          if Atomic.get c <> 1 then
            Alcotest.failf "index %d ran %d times" i (Atomic.get c))
        hits)

let test_for_propagates_exception () =
  with_pool 4 (fun pool ->
      let n = 64 in
      let ran = Atomic.make 0 in
      let raised =
        match
          Pool.parallel_for pool ~n (fun i ->
              if i = 13 then failwith "boom" else Atomic.incr ran)
        with
        | () -> false
        | exception Failure msg when msg = "boom" -> true
      in
      Alcotest.(check bool) "Failure re-raised in caller" true raised;
      (* The other tasks still ran to completion. *)
      Alcotest.(check int) "remaining tasks completed" (n - 1)
        (Atomic.get ran))

let test_nested_parallel_for () =
  with_pool 2 (fun pool ->
      let total = Atomic.make 0 in
      Pool.parallel_for pool ~n:4 (fun _ ->
          Pool.parallel_for pool ~n:8 (fun _ -> Atomic.incr total));
      Alcotest.(check int) "inner iterations all ran" 32 (Atomic.get total))

let test_iter_chunks_partitions () =
  with_pool 5 (fun pool ->
      List.iter
        (fun n ->
          let seen = Array.make n 0 in
          let nchunks = ref 0 in
          Pool.iter_chunks pool ~n (fun ~chunk:_ ~lo ~hi ->
              incr nchunks;
              for i = lo to hi - 1 do
                seen.(i) <- seen.(i) + 1
              done);
          Alcotest.(check int)
            (Printf.sprintf "chunk count for n=%d" n)
            (Stdlib.min 5 n) !nchunks;
          Array.iteri
            (fun i c ->
              if c <> 1 then Alcotest.failf "n=%d: index %d covered %d times" n i c)
            seen)
        [ 1; 4; 5; 13 ])

(* Grain model: [chunks_for] is a pure function of (pool size, n, cost)
   with hard bounds — never more chunks than items or than 4 per slot,
   never a split on a 1-slot pool or for work below the grain. *)
let test_chunks_for_model () =
  with_pool 4 (fun pool ->
      let a = Pool.chunks_for pool ~n:500 ~cost:1_000_000 in
      let b = Pool.chunks_for pool ~n:500 ~cost:1_000_000 in
      Alcotest.(check int) "deterministic" a b;
      Alcotest.(check bool) "expensive work splits" true (a > 1);
      List.iter
        (fun (n, cost) ->
          let c = Pool.chunks_for pool ~n ~cost in
          if c < 1 || c > Stdlib.max 1 n then
            Alcotest.failf "chunks_for n=%d cost=%d out of [1,n]: %d" n cost c;
          if c > 16 then
            Alcotest.failf "chunks_for n=%d cost=%d exceeds 4/slot: %d" n cost
              c)
        [ (0, 0); (1, max_int); (7, 100); (500, 1_000_000); (500, max_int) ];
      Alcotest.(check int) "below-grain cost stays inline" 1
        (Pool.chunks_for pool ~n:500 ~cost:100));
  with_pool 1 (fun pool ->
      Alcotest.(check int) "1-slot pool never splits" 1
        (Pool.chunks_for pool ~n:500 ~cost:max_int))

(* [iter_grained] must cover every index exactly once whatever the
   grain model decides — inline, partial split or full fan-out. *)
let test_iter_grained_covers () =
  with_pool 4 (fun pool ->
      List.iter
        (fun (n, cost) ->
          let seen = Array.make (Stdlib.max 1 n) 0 in
          Pool.iter_grained pool ~n ~cost (fun ~lo ~hi ->
              for i = lo to hi - 1 do
                seen.(i) <- seen.(i) + 1
              done);
          for i = 0 to n - 1 do
            if seen.(i) <> 1 then
              Alcotest.failf "n=%d cost=%d: index %d covered %d times" n cost
                i seen.(i)
          done)
        [ (0, 0); (1, max_int); (13, 100); (257, 10_000_000) ])

(* Chunked floating-point reduction: the grouping depends only on the
   input length, so even a non-associative combine is bit-identical at
   every pool size. *)
let test_reduce_bit_identical () =
  let rng = Rng.create 5 in
  let a = Array.init 301 (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  let f x = (x *. x) +. 1e-3 in
  let combine = ( +. ) in
  let at jobs = with_pool jobs (fun pool -> Pool.reduce pool ~f ~combine a) in
  let r1 = at 1 in
  List.iter
    (fun jobs ->
      match (r1, at jobs) with
      | Some x, Some y ->
          if Int64.bits_of_float x <> Int64.bits_of_float y then
            Alcotest.failf "reduce at %d jobs: %.17g vs %.17g" jobs y x
      | _ -> Alcotest.fail "reduce returned None on non-empty input")
    [ 3; 5 ];
  (* And it is the right sum, up to reassociation. *)
  let plain = Array.fold_left (fun acc x -> combine acc (f x)) (f a.(0)) (Array.sub a 1 300) in
  (match r1 with
  | Some x ->
      Alcotest.(check bool) "reduce close to sequential fold" true
        (Float.abs (x -. plain) <= 1e-9 *. Float.abs plain)
  | None -> Alcotest.fail "reduce returned None");
  with_pool 3 (fun pool ->
      Alcotest.(check bool) "reduce of empty is None" true
        (Pool.reduce pool ~f ~combine [||] = None))

let test_once_forces_once () =
  with_pool 4 (fun pool ->
      let computed = Atomic.make 0 in
      let once =
        Pool.Once.make (fun () ->
            Atomic.incr computed;
            41 + Atomic.get computed)
      in
      let results = Pool.map pool (fun _ -> Pool.Once.force once) (Array.make 32 ()) in
      Alcotest.(check int) "computed exactly once" 1 (Atomic.get computed);
      Array.iter (fun v -> Alcotest.(check int) "same memo for all" 42 v) results)

(* ------------------------------------------------- indexed rng split *)

let test_of_pair_matches_sequential_splits () =
  let seed = 91 in
  let parent = Rng.create seed in
  for i = 0 to 9 do
    let sequential = Rng.split parent in
    let indexed = Rng.of_pair seed i in
    for draw = 0 to 4 do
      let a = Rng.int64 sequential and b = Rng.int64 indexed in
      if a <> b then
        Alcotest.failf "of_pair %d, draw %d: %Ld vs sequential %Ld" i draw b a
    done
  done;
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Rng.of_pair: negative index") (fun () ->
      ignore (Rng.of_pair 1 (-1)))

(* ------------------------------------------------ parallel kernels *)

let test_dense_kernels_bit_identical () =
  let rng = Rng.create 17 in
  (* 150 x 150 and 30^3 both clear the parallel-path size gates. *)
  let a = Mat.init 150 150 (fun _ _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  let x = Array.init 150 (fun _ -> Rng.uniform rng ~lo:0. ~hi:1.) in
  let b = Mat.init 30 30 (fun _ _ -> Rng.float rng) in
  let c = Mat.init 30 30 (fun _ _ -> Rng.float rng) in
  let mv = Mat.matvec a x in
  let mm = Mat.matmul b c in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          check_bits
            (Printf.sprintf "matvec at %d jobs" jobs)
            mv
            (Mat.matvec ~pool a x);
          let mmp = Mat.matmul ~pool b c in
          for i = 0 to Mat.rows mm - 1 do
            check_bits
              (Printf.sprintf "matmul row %d at %d jobs" i jobs)
              (Mat.row mm i) (Mat.row mmp i)
          done))
    [ 2; 5 ]

let csr_fixture () =
  let rng = Rng.create 29 in
  let rows = 220 and cols = 150 in
  (* ~6600 stored entries: enough work for the grain model to split. *)
  let entries = ref [] in
  for i = 0 to rows - 1 do
    for _ = 1 to 30 do
      entries :=
        (i, Rng.int rng cols, Rng.uniform rng ~lo:0.1 ~hi:1.) :: !entries
    done
  done;
  let m = Csr.of_triplets ~rows ~cols !entries in
  let x = Array.init cols (fun _ -> Rng.float rng) in
  (m, x)

let test_csr_matvec_bit_identical () =
  let m, x = csr_fixture () in
  let plain = Csr.matvec m x in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          check_bits
            (Printf.sprintf "csr matvec at %d jobs" jobs)
            plain
            (Csr.matvec ~pool m x)))
    [ 2; 5 ]

(* Nest safety of grain autotuning: a grained pooled matvec launched
   from inside a [parallel_for] fan-out (the Registry.run_all shape —
   every experiment task hits pooled kernels on the same pool) must
   still produce bit-identical results for every task. *)
let test_grained_nested_in_fanout () =
  let m, x = csr_fixture () in
  let rows = Csr.rows m in
  let plain = Csr.matvec m x in
  with_pool 2 (fun pool ->
      let outs = Array.init 6 (fun _ -> Vec.zeros rows) in
      Pool.parallel_for pool ~n:6 (fun i ->
          Csr.matvec_into ~pool m x ~dst:outs.(i));
      Array.iteri
        (fun i out ->
          check_bits (Printf.sprintf "nested grained matvec task %d" i) plain
            out)
        outs)

(* ------------------------------------------------------ window scans *)

let window = 5
let steps = 6

(* Cold solves are independent, so a multi-domain scan is bit-identical
   to the single-domain one; warm scans chain per chunk and must agree
   within the solver tolerance (same bounds as test_warmstart). *)
let test_scan_jobs4_matches_jobs1 () =
  let ctx1 = Ctx.create ~fast:true ~jobs:1 () in
  let ctx4 = Ctx.create ~fast:true ~jobs:4 () in
  let rel_dist a b = Vec.dist2 a b /. (1. +. Vec.norm2 a) in
  List.iter
    (fun (name, tol) ->
      let est = Estimator.of_name name in
      let scan ctx ~warm =
        scan_busy
          ~opts:(Estimator.Options.make ~warm ())
          ctx.Ctx.europe est ~window ~steps
      in
      List.iter2
        (fun (k1, cold1) (k4, cold4) ->
          Alcotest.(check int) (name ^ " cold scan order") k1 k4;
          check_bits (name ^ " cold scan bit-identical") cold1 cold4)
        (scan ctx1 ~warm:false) (scan ctx4 ~warm:false);
      List.iter2
        (fun (k1, warm1) (k4, warm4) ->
          Alcotest.(check int) (name ^ " warm scan order") k1 k4;
          let d = rel_dist warm1 warm4 in
          if not (d <= tol) then
            Alcotest.failf "%s warm at snapshot %d: jobs=4 deviates by %.3e"
              name k1 d)
        (scan ctx1 ~warm:true) (scan ctx4 ~warm:true))
    [ ("entropy", 1e-4); ("vardi", 1e-8); ("cao", 5e-1) ]

(* Chunked warm accounting: a 4-slot pool splits [steps] positions into
   min 4 steps chunks, each chunk running its own warm chain — so the
   first warm scan misses once per chunk and hits on every other
   position, and a repeat scan hits everywhere. *)
let test_warm_counters_chunked () =
  let jobs = 4 in
  let ctx = Ctx.create ~fast:true ~jobs () in
  let net = ctx.Ctx.europe in
  let est = Estimator.of_name "entropy" in
  let nchunks = Stdlib.min jobs steps in
  ignore (scan_busy net est ~window ~steps);
  let st = Workspace.stats net.Ctx.workspace in
  Alcotest.(check int) "cold scan: no warm traffic" 0
    (st.Workspace.warm.hits + st.Workspace.warm.misses);
  ignore (scan_busy ~opts:(Estimator.Options.make ~warm:true ()) net est ~window ~steps);
  let st = Workspace.stats net.Ctx.workspace in
  Alcotest.(check int) "first warm scan: one miss per chunk" nchunks
    st.Workspace.warm.misses;
  Alcotest.(check int) "first warm scan: hits elsewhere" (steps - nchunks)
    st.Workspace.warm.hits;
  ignore (scan_busy ~opts:(Estimator.Options.make ~warm:true ()) net est ~window ~steps);
  let st = Workspace.stats net.Ctx.workspace in
  Alcotest.(check int) "repeat warm scan never misses" nchunks
    st.Workspace.warm.misses;
  Alcotest.(check int) "repeat warm scan hits every position"
    ((2 * steps) - nchunks)
    st.Workspace.warm.hits

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches Array.map" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "map edge sizes" `Quick test_map_edge_sizes;
          Alcotest.test_case "parallel_for covers every index" `Quick
            test_for_covers_every_index;
          Alcotest.test_case "exceptions propagate" `Quick
            test_for_propagates_exception;
          Alcotest.test_case "nested parallel_for" `Quick
            test_nested_parallel_for;
          Alcotest.test_case "iter_chunks partitions exactly" `Quick
            test_iter_chunks_partitions;
          Alcotest.test_case "chunks_for grain model" `Quick
            test_chunks_for_model;
          Alcotest.test_case "iter_grained covers every index" `Quick
            test_iter_grained_covers;
          Alcotest.test_case "reduce bit-identical across pool sizes" `Quick
            test_reduce_bit_identical;
          Alcotest.test_case "Once computes once" `Quick test_once_forces_once;
        ] );
      ( "rng",
        [
          Alcotest.test_case "of_pair = sequential splits" `Quick
            test_of_pair_matches_sequential_splits;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "dense matvec/matmul bit-identical" `Quick
            test_dense_kernels_bit_identical;
          Alcotest.test_case "csr matvec bit-identical" `Quick
            test_csr_matvec_bit_identical;
          Alcotest.test_case "grained kernel nested in fan-out" `Quick
            test_grained_nested_in_fanout;
        ] );
      ( "scans",
        [
          Alcotest.test_case "jobs=4 scan matches jobs=1" `Quick
            test_scan_jobs4_matches_jobs1;
          Alcotest.test_case "chunked warm accounting" `Quick
            test_warm_counters_chunked;
        ] );
    ]
