open Tmest_linalg
open Tmest_net
open Tmest_traffic
open Tmest_core

let check_float eps = Alcotest.(check (float eps))

(* Shared fixtures: a small but non-trivial dataset and the full-size
   European one. *)
let small_spec =
  { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with Spec.seed = 7 }

let small = lazy (Dataset.generate small_spec)

let busy_snapshot d =
  let k = d.Dataset.spec.Spec.busy_start + (d.Dataset.spec.Spec.busy_len / 2) in
  (Dataset.demand_at d k, Dataset.link_loads_at d k)

let busy_load_matrix d window =
  let busy = Dataset.busy_samples d in
  let ks = Array.of_list busy in
  let ks = Array.sub ks (Array.length ks - window) window in
  let l = Dataset.num_links d in
  Mat.init window l (fun i j -> (Dataset.link_loads_at d ks.(i)).(j))

(* Method modules take a solver workspace; the tests build a throwaway
   one per call, which is exactly the historical per-call behaviour. *)
let ws_of d = Workspace.create d.Dataset.routing

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_mre_basic () =
  let truth = Vec.of_list [ 10.; 5.; 1. ] in
  let estimate = Vec.of_list [ 12.; 4.; 100. ] in
  (* coverage 0.9: threshold keeps 10 and 5 (15/16 = 0.9375). *)
  let m = Metrics.mre ~truth ~estimate () in
  check_float 1e-9 "mre over top demands" ((0.2 +. 0.2) /. 2.) m

let test_mre_threshold_coverage () =
  let truth = Vec.of_list [ 8.; 1.; 1. ] in
  let th, count = Metrics.threshold_for_coverage ~coverage:0.8 truth in
  check_float 1e-9 "threshold" 8. th;
  Alcotest.(check int) "count" 1 count

let test_mre_perfect () =
  let truth = Vec.of_list [ 3.; 2.; 1. ] in
  check_float 1e-12 "zero" 0. (Metrics.mre ~truth ~estimate:truth ())

let test_rank_correlation () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float 1e-9 "identity" 1. (Metrics.rank_correlation xs xs);
  check_float 1e-9 "reverse" (-1.)
    (Metrics.rank_correlation xs [| 4.; 3.; 2.; 1. |]);
  (* Monotone transform preserves rho. *)
  check_float 1e-9 "monotone" 1.
    (Metrics.rank_correlation xs (Array.map exp xs))

let test_rmse_and_l1 () =
  let truth = Vec.of_list [ 1.; 2. ] and est = Vec.of_list [ 2.; 4. ] in
  check_float 1e-9 "rmse" (sqrt 2.5) (Metrics.rmse ~truth ~estimate:est);
  check_float 1e-9 "l1" 1. (Metrics.relative_l1 ~truth ~estimate:est)

(* ------------------------------------------------------------------ *)
(* Gravity                                                             *)
(* ------------------------------------------------------------------ *)

let test_gravity_node_totals () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let te, tx = Gravity.node_totals d.Dataset.routing ~loads in
  let n = Dataset.num_nodes d in
  Odpairs.iter ~nodes:n (fun _ _ _ -> ());
  (* te/tx extracted from access rows must equal the TM row/col sums. *)
  let te_ref = Array.make n 0. and tx_ref = Array.make n 0. in
  Odpairs.iter ~nodes:n (fun p src dst ->
      te_ref.(src) <- te_ref.(src) +. truth.(p);
      tx_ref.(dst) <- tx_ref.(dst) +. truth.(p));
  for i = 0 to n - 1 do
    check_float 1. "te" te_ref.(i) te.(i);
    check_float 1. "tx" tx_ref.(i) tx.(i)
  done

let test_gravity_preserves_total () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let est = Gravity.simple d.Dataset.routing ~loads in
  check_float 1e-3 "total preserved"
    (Vec.sum truth /. Vec.sum truth)
    (Vec.sum est /. Vec.sum truth)

let test_gravity_exact_on_rank_one () =
  (* If the true TM is exactly rank-one (gravity assumption holds), the
     gravity estimate is exact. *)
  let d = Lazy.force small in
  let n = Dataset.num_nodes d in
  let routing = d.Dataset.routing in
  let a = Vec.of_list [ 5.; 1.; 3.; 2.; 4.; 0.5 ] in
  let b = Vec.of_list [ 1.; 2.; 1.; 3.; 0.5; 1. ] in
  let s = Vec.zeros (Odpairs.count n) in
  Odpairs.iter ~nodes:n (fun p src dst -> s.(p) <- a.(src) *. b.(dst));
  let loads = Routing.link_loads routing s in
  let est = Gravity.simple routing ~loads in
  (* Rank-one with zero diagonal is not exactly rank-one, so allow a
     modest relative error but require high rank correlation. *)
  Alcotest.(check bool) "rank correlation" true
    (Metrics.rank_correlation s est > 0.97)

let test_generalized_gravity_zeroes_peers () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let topo = Topology.set_node_kind d.Dataset.topo 0 Topology.Peering in
  let topo = Topology.set_node_kind topo 1 Topology.Peering in
  let routing = { d.Dataset.routing with Routing.topo } in
  let est = Gravity.generalized routing ~loads in
  let n = Dataset.num_nodes d in
  let p01 = Odpairs.index ~nodes:n ~src:0 ~dst:1 in
  let p10 = Odpairs.index ~nodes:n ~src:1 ~dst:0 in
  check_float 1e-9 "peer-to-peer zero" 0. est.(p01);
  check_float 1e-9 "peer-to-peer zero" 0. est.(p10);
  let te, _ = Gravity.node_totals routing ~loads in
  check_float 1. "total preserved" (Vec.sum te) (Vec.sum est)

(* ------------------------------------------------------------------ *)
(* Kruithof                                                            *)
(* ------------------------------------------------------------------ *)

let test_kruithof_matches_marginals () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let n = Dataset.num_nodes d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let adjusted = Kruithof.adjust (ws_of d) ~loads ~prior in
  let te_ref = Array.make n 0. in
  Odpairs.iter ~nodes:n (fun p src _ -> te_ref.(src) <- te_ref.(src) +. truth.(p));
  let te_adj = Array.make n 0. in
  Odpairs.iter ~nodes:n (fun p src _ -> te_adj.(src) <- te_adj.(src) +. adjusted.(p));
  for i = 0 to n - 1 do
    Alcotest.(check bool) "row total matched" true
      (abs_float (te_adj.(i) -. te_ref.(i)) < 1e-4 *. (1. +. te_ref.(i)))
  done

let test_krupp_consistent_with_loads () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let s = Kruithof.krupp ~stop:(Tmest_opt.Stop.make ~max_iter:4000 ()) (ws_of d) ~loads ~prior in
  check_float 0.02 "Rs = t (relative)" 0.
    (Problem.residual_norm d.Dataset.routing ~loads s)

let test_krupp_improves_on_prior () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let s = Kruithof.krupp ~stop:(Tmest_opt.Stop.make ~max_iter:4000 ()) (ws_of d) ~loads ~prior in
  let mre_prior = Metrics.mre ~truth ~estimate:prior () in
  let mre_krupp = Metrics.mre ~truth ~estimate:s () in
  Alcotest.(check bool)
    (Printf.sprintf "krupp %.3f <= prior %.3f" mre_krupp mre_prior)
    true (mre_krupp <= mre_prior +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Bayes / Entropy                                                     *)
(* ------------------------------------------------------------------ *)

let test_bayes_small_sigma_returns_prior () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let r = Bayes.estimate (ws_of d) ~loads ~prior ~sigma2:1e-9 in
  Alcotest.(check bool) "close to prior" true
    (Metrics.relative_l1 ~truth:prior ~estimate:r.Bayes.estimate < 1e-3)

let test_bayes_large_sigma_fits_loads () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let r = Bayes.estimate ~stop:(Tmest_opt.Stop.make ~max_iter:8000 ()) (ws_of d) ~loads ~prior ~sigma2:1e5 in
  check_float 0.01 "fits measurements" 0.
    (Problem.residual_norm d.Dataset.routing ~loads r.Bayes.estimate)

let test_bayes_improves_prior () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let r = Bayes.estimate (ws_of d) ~loads ~prior ~sigma2:1000. in
  let mre_prior = Metrics.mre ~truth ~estimate:prior () in
  let mre_bayes = Metrics.mre ~truth ~estimate:r.Bayes.estimate () in
  Alcotest.(check bool)
    (Printf.sprintf "bayes %.3f < prior %.3f" mre_bayes mre_prior)
    true
    (mre_bayes < mre_prior)

let test_entropy_small_sigma_returns_prior () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let r = Entropy.estimate (ws_of d) ~loads ~prior ~sigma2:1e-9 in
  Alcotest.(check bool) "close to prior" true
    (Metrics.relative_l1 ~truth:prior ~estimate:r.Entropy.estimate < 1e-3)

let test_entropy_large_sigma_fits_loads () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let r =
    Entropy.estimate ~stop:(Tmest_opt.Stop.make ~max_iter:8000 ()) (ws_of d) ~loads ~prior
      ~sigma2:1e5
  in
  check_float 0.02 "fits measurements" 0.
    (Problem.residual_norm d.Dataset.routing ~loads r.Entropy.estimate)

let test_entropy_improves_prior () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let r = Entropy.estimate (ws_of d) ~loads ~prior ~sigma2:1000. in
  let mre_prior = Metrics.mre ~truth ~estimate:prior () in
  let mre_entropy = Metrics.mre ~truth ~estimate:r.Entropy.estimate () in
  Alcotest.(check bool)
    (Printf.sprintf "entropy %.3f < prior %.3f" mre_entropy mre_prior)
    true
    (mre_entropy < mre_prior)

let test_entropy_nonnegative () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let r = Entropy.estimate (ws_of d) ~loads ~prior ~sigma2:100. in
  Array.iter
    (fun x -> Alcotest.(check bool) "nonneg" true (x >= 0.))
    r.Entropy.estimate

let test_entropy_fixed_pins_measured () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let fixed = [ (0, truth.(0)); (5, truth.(5)) ] in
  let r =
    Entropy.estimate_fixed (ws_of d) ~loads ~prior ~sigma2:1000.
      ~fixed
  in
  check_float 1e-6 "pinned 0" truth.(0) r.Entropy.estimate.(0);
  check_float 1e-6 "pinned 5" truth.(5) r.Entropy.estimate.(5)

let test_entropy_fixed_reduces_mre () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let base = Entropy.estimate (ws_of d) ~loads ~prior ~sigma2:1000. in
  let order = Array.init (Array.length truth) (fun i -> i) in
  Array.sort (fun a b -> compare truth.(b) truth.(a)) order;
  let fixed = List.map (fun i -> (order.(i), truth.(order.(i)))) [ 0; 1; 2; 3 ] in
  let pinned =
    Entropy.estimate_fixed (ws_of d) ~loads ~prior ~sigma2:1000.
      ~fixed
  in
  let mre_base = Metrics.mre ~truth ~estimate:base.Entropy.estimate () in
  let mre_pinned = Metrics.mre ~truth ~estimate:pinned.Entropy.estimate () in
  Alcotest.(check bool)
    (Printf.sprintf "pinned %.4f <= base %.4f" mre_pinned mre_base)
    true
    (mre_pinned <= mre_base +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Worst-case bounds                                                   *)
(* ------------------------------------------------------------------ *)

let test_wcb_contains_truth () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let b = Wcb.bounds (ws_of d) ~loads in
  Alcotest.(check bool) "truth within bounds" true (Wcb.contains b truth)

let test_wcb_bounds_ordered () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let b = Wcb.bounds (ws_of d) ~loads in
  Array.iteri
    (fun i lo ->
      Alcotest.(check bool) "lower <= upper" true (lo <= b.Wcb.upper.(i) +. 1e-6))
    b.Wcb.lower

let test_wcb_beats_trivial () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let b = Wcb.bounds (ws_of d) ~loads in
  let trivial = Wcb.trivial_upper (ws_of d) ~loads in
  let improved = ref 0 in
  Array.iteri
    (fun i u -> if u < trivial.(i) -. 1. then incr improved)
    b.Wcb.upper;
  Alcotest.(check bool)
    (Printf.sprintf "LP tightens %d bounds" !improved)
    true (!improved > 0)

let test_wcb_midpoint_better_than_gravity () =
  (* On the (locality-heavy) small dataset the WCB prior should beat the
     plain gravity prior, as in the paper's Table 2. *)
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let wcb = Wcb.midpoint (Wcb.bounds (ws_of d) ~loads) in
  let grav = Gravity.simple d.Dataset.routing ~loads in
  let mre_wcb = Metrics.mre ~truth ~estimate:wcb () in
  let mre_grav = Metrics.mre ~truth ~estimate:grav () in
  Alcotest.(check bool)
    (Printf.sprintf "wcb %.3f, gravity %.3f" mre_wcb mre_grav)
    true
    (mre_wcb < mre_grav +. 0.05)

let test_wcb_exact_null_space_slack () =
  (* A 3-node network has the classic one-dimensional cyclic ambiguity:
     the null space of R is spanned by d = (+1,-1,-1,+1,+1,-1) in pair
     order ((0,1),(0,2),(1,0),(1,2),(2,0),(2,1)).  The LP bounds must
     equal truth +- exactly the slack available along d with s >= 0. *)
  let nodes =
    Array.init 3 (fun i ->
        {
          Topology.node_id = i;
          name = Printf.sprintf "n%d" i;
          kind = Topology.Access;
          lat = 0.;
          lon = float_of_int i;
        })
  in
  let topo =
    Topology.build ~name:"t" nodes
      [ (0, 1, 10e9, 1.); (1, 2, 10e9, 1.); (0, 2, 10e9, 3.) ]
  in
  let routing = Routing.shortest_path topo in
  let p = Odpairs.count 3 in
  let s = Vec.init p (fun i -> float_of_int (i + 1) *. 1e6) in
  let loads = Routing.link_loads routing s in
  let b = Wcb.bounds (Workspace.create routing) ~loads in
  let dir = [| 1.; -1.; -1.; 1.; 1.; -1. |] in
  (* t_plus: how far s + t*dir stays >= 0 (bounded by negative entries);
     t_minus: same in the other direction. *)
  let t_plus = ref infinity and t_minus = ref infinity in
  Array.iteri
    (fun i d ->
      if d < 0. then t_plus := Stdlib.min !t_plus s.(i)
      else t_minus := Stdlib.min !t_minus s.(i))
    dir;
  for i = 0 to p - 1 do
    let slack_up = if dir.(i) > 0. then !t_plus else !t_minus in
    let slack_down = if dir.(i) > 0. then !t_minus else !t_plus in
    check_float 10. "upper = truth + slack" (s.(i) +. slack_up) b.Wcb.upper.(i);
    check_float 10. "lower = truth - slack" (s.(i) -. slack_down)
      b.Wcb.lower.(i)
  done

(* ------------------------------------------------------------------ *)
(* Fanout estimation                                                   *)
(* ------------------------------------------------------------------ *)

let test_fanout_rows_sum_to_one () =
  let d = Lazy.force small in
  let samples = busy_load_matrix d 5 in
  let r = Fanout.estimate (ws_of d) ~load_samples:samples in
  let n = Dataset.num_nodes d in
  for src = 0 to n - 1 do
    let total = ref 0. in
    Odpairs.iter ~nodes:n (fun p s _ -> if s = src then total := !total +. r.Fanout.fanouts.(p));
    check_float 1e-6 "row sum" 1. !total
  done

let test_fanout_recovers_constant_fanouts () =
  (* Synthetic loads generated from exactly constant fanouts with
     varying node totals: the estimator must recover them. *)
  let d = Lazy.force small in
  let routing = d.Dataset.routing in
  let n = Dataset.num_nodes d in
  let p = Odpairs.count n in
  let base = d.Dataset.truth.Demand_gen.base_fanouts in
  let window = 8 in
  let loads =
    Mat.init window (Dataset.num_links d) (fun k j ->
        ignore j;
        k |> fun _ -> 0.)
  in
  ignore loads;
  let load_rows =
    Array.init window (fun k ->
        let te =
          Vec.init n (fun node ->
              1e9 *. (1. +. (0.3 *. float_of_int ((k + node) mod 4))))
        in
        let s = Vec.zeros p in
        Odpairs.iter ~nodes:n (fun pair src dst ->
            s.(pair) <- te.(src) *. Mat.get base src dst);
        Routing.link_loads routing s)
  in
  let samples =
    Mat.init window (Dataset.num_links d) (fun k j -> load_rows.(k).(j))
  in
  let r = Fanout.estimate (Workspace.create routing) ~load_samples:samples in
  Odpairs.iter ~nodes:n (fun pair src dst ->
      Alcotest.(check bool) "fanout recovered" true
        (abs_float (r.Fanout.fanouts.(pair) -. Mat.get base src dst) < 1e-4))

let test_fanout_estimate_reasonable () =
  let d = Lazy.force small in
  let window = 10 in
  let samples = busy_load_matrix d window in
  let r = Fanout.estimate (ws_of d) ~load_samples:samples in
  let truth = Dataset.busy_mean_demand d in
  let mre = Metrics.mre ~truth ~estimate:r.Fanout.estimate () in
  Alcotest.(check bool) (Printf.sprintf "fanout MRE %.3f < 0.6" mre) true
    (mre < 0.6)

(* ------------------------------------------------------------------ *)
(* Vardi / Cao                                                         *)
(* ------------------------------------------------------------------ *)

let test_vardi_identifiable_on_ideal_poisson () =
  (* Large window of exact Poisson draws: Vardi with sigma_inv2 = 1 must
     come close to the true means (the paper's Fig. 12 premise). *)
  let d = Lazy.force small in
  let unit_bps = 1e6 in
  let series = Dataset.poisson_series d ~unit_bps ~samples:800 ~seed:3 in
  let loads =
    Mat.init 800 (Dataset.num_links d) (fun k j ->
        (Routing.link_loads d.Dataset.routing (Mat.row series k)).(j))
  in
  let r =
    Vardi.estimate ~unit_bps (ws_of d) ~load_samples:loads
      ~sigma_inv2:1.
  in
  let truth = Dataset.busy_mean_demand d in
  let mre = Metrics.mre ~truth ~estimate:r.Vardi.estimate () in
  Alcotest.(check bool) (Printf.sprintf "vardi ideal MRE %.3f < 0.35" mre) true
    (mre < 0.35)

let test_vardi_first_moment_consistent () =
  (* As sigma_inv2 -> 0 the estimator reduces to non-negative least
     squares on the first moment, so the mean residual must vanish. *)
  let d = Lazy.force small in
  let samples = busy_load_matrix d 20 in
  let r =
    Vardi.estimate (ws_of d) ~load_samples:samples ~sigma_inv2:1e-9
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean residual %.4f small" r.Vardi.mean_residual)
    true
    (r.Vardi.mean_residual < 0.02)

let test_vardi_strong_poisson_faith_hurts_mean_fit () =
  (* With full faith in the (violated) Poisson assumption, the
     covariance term dominates and drags the estimate away from the
     measured means — the failure mode of Section 5.3.4. *)
  let d = Lazy.force small in
  let samples = busy_load_matrix d 20 in
  let weak =
    Vardi.estimate (ws_of d) ~load_samples:samples ~sigma_inv2:1e-9
  in
  let strong =
    Vardi.estimate (ws_of d) ~load_samples:samples ~sigma_inv2:1.
  in
  Alcotest.(check bool)
    (Printf.sprintf "residual grows: %.4f -> %.4f" weak.Vardi.mean_residual
       strong.Vardi.mean_residual)
    true
    (strong.Vardi.mean_residual > weak.Vardi.mean_residual)

let test_cao_reduces_objective () =
  let d = Lazy.force small in
  let samples = busy_load_matrix d 20 in
  let r =
    Cao.estimate (ws_of d) ~load_samples:samples ~phi:1. ~c:1.5
      ~sigma_inv2:0.01
  in
  Alcotest.(check bool) "ran some iterations" true (r.Cao.iterations >= 1);
  Array.iter
    (fun x -> Alcotest.(check bool) "nonneg" true (x >= 0.))
    r.Cao.estimate

let test_cao_matches_vardi_at_c1 () =
  let d = Lazy.force small in
  let samples = busy_load_matrix d 15 in
  let v =
    Vardi.estimate (ws_of d) ~load_samples:samples ~sigma_inv2:0.5
  in
  let c =
    Cao.estimate (ws_of d) ~load_samples:samples ~phi:1. ~c:1.
      ~sigma_inv2:0.5
  in
  (* Same objective; different solvers. Compare on the large demands. *)
  let truth = Dataset.busy_mean_demand d in
  let mre_v = Metrics.mre ~truth ~estimate:v.Vardi.estimate () in
  let mre_c = Metrics.mre ~truth ~estimate:c.Cao.estimate () in
  Alcotest.(check bool)
    (Printf.sprintf "cao %.3f within 0.15 of vardi %.3f" mre_c mre_v)
    true
    (abs_float (mre_c -. mre_v) < 0.15)

(* ------------------------------------------------------------------ *)
(* Combined                                                            *)
(* ------------------------------------------------------------------ *)

let test_combined_greedy_monotone_trend () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let steps =
    Combined.greedy (ws_of d) ~loads ~prior ~truth ~sigma2:1000.
      ~steps:6
  in
  Alcotest.(check int) "six steps" 6 (List.length steps);
  let mres = List.map (fun s -> s.Combined.mre) steps in
  let first = List.hd mres and last = List.nth mres 5 in
  Alcotest.(check bool)
    (Printf.sprintf "mre drops: %.4f -> %.4f" first last)
    true (last <= first +. 1e-9);
  (* No pair measured twice. *)
  let pairs = List.map (fun s -> s.Combined.measured) steps in
  Alcotest.(check int) "distinct" 6
    (List.length (List.sort_uniq compare pairs))

let test_combined_greedy_beats_largest_first () =
  (* Greedy optimizes the metric directly, so it can only do better (or
     equal) at each prefix. *)
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let g =
    Combined.greedy (ws_of d) ~loads ~prior ~truth ~sigma2:1000.
      ~steps:4
  in
  let lf =
    Combined.largest_first (ws_of d) ~loads ~prior ~truth
      ~sigma2:1000. ~steps:4
  in
  let last l = (List.nth l (List.length l - 1)).Combined.mre in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.4f <= largest-first %.4f + eps" (last g) (last lf))
    true
    (last g <= last lf +. 0.02)


(* ------------------------------------------------------------------ *)
(* Iterative refinement                                                *)
(* ------------------------------------------------------------------ *)

let test_iterative_improves_prior () =
  (* Iterating on one snapshot at prior-trusting regularization walks
     the estimate towards the load-consistent manifold: the MRE against
     that snapshot must strictly improve on the gravity prior. *)
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let series = Mat.init 4 (Dataset.num_links d) (fun _ j -> loads.(j)) in
  let trace =
    Iterative.refine ~rounds:8 ~tol:1e-6 ~sigma2:1. (ws_of d)
      ~load_series:series ~prior
  in
  let refined = Iterative.final trace in
  let mre_prior = Metrics.mre ~truth ~estimate:prior () in
  let mre_refined = Metrics.mre ~truth ~estimate:refined () in
  Alcotest.(check bool)
    (Printf.sprintf "refined %.3f < prior %.3f" mre_refined mre_prior)
    true
    (mre_refined < mre_prior)

let test_iterative_deltas_shrink () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  (* Same snapshot repeated: the iteration must converge (deltas to 0). *)
  let series =
    Mat.init 3 (Dataset.num_links d) (fun _ j -> loads.(j))
  in
  let trace =
    Iterative.refine ~rounds:12 ~tol:1e-6 ~sigma2:10. (ws_of d)
      ~load_series:series ~prior
  in
  let deltas = trace.Iterative.deltas in
  let n = Array.length deltas in
  Alcotest.(check bool) "ran some rounds" true (n >= 2);
  Alcotest.(check bool)
    (Printf.sprintf "last delta %.5f < first %.5f" deltas.(n - 1) deltas.(0))
    true
    (deltas.(n - 1) < deltas.(0))

let test_trivial_upper_valid_under_ecmp () =
  (* With fractional routing, the trivial bound must only use whole-
     demand rows and hence stay a valid upper bound. *)
  let d = Lazy.force small in
  let topo =
    {
      (d.Dataset.topo) with
      Topology.links =
        Array.map
          (fun l ->
            if l.Topology.lkind = Topology.Interior then
              { l with Topology.metric = 1. }
            else l)
          d.Dataset.topo.Topology.links;
    }
  in
  let routing = Routing.ecmp topo in
  let truth, _ = busy_snapshot d in
  let loads = Routing.link_loads routing truth in
  let upper = Wcb.trivial_upper (Workspace.create routing) ~loads in
  Array.iteri
    (fun p u ->
      Alcotest.(check bool) "upper >= truth" true
        (u >= truth.(p) -. 1e-6 *. (1. +. truth.(p))))
    upper


(* ------------------------------------------------------------------ *)
(* Route-change inference + MCMC                                       *)
(* ------------------------------------------------------------------ *)

let test_routechange_improves_identifiability () =
  (* Two routings over the same (noise-free mean) demands: the stacked
     system pins demands a single snapshot cannot. *)
  let d = Lazy.force small in
  let topo = d.Dataset.topo in
  let truth = Dataset.busy_mean_demand d in
  let r1 = Routing.shortest_path topo in
  (* Second configuration: fail the busiest interior link and re-route. *)
  let loads1 = Routing.link_loads r1 truth in
  let busiest =
    List.fold_left
      (fun best l ->
        match best with
        | Some b when loads1.(b) >= loads1.(l.Topology.link_id) -> best
        | _ -> Some l.Topology.link_id)
      None
      (Topology.interior_links topo)
    |> Option.get
  in
  let n = Topology.num_nodes topo in
  let usable l = l.Topology.link_id <> busiest in
  let paths = Array.make (Odpairs.count n) [] in
  for src = 0 to n - 1 do
    let _, parent = Dijkstra.tree ~usable topo ~src in
    for dst = 0 to n - 1 do
      if dst <> src then
        match Dijkstra.path_of_tree topo parent ~src ~dst with
        | Some p -> paths.(Odpairs.index ~nodes:n ~src ~dst) <- p
        | None -> Alcotest.fail "disconnected after failure"
    done
  done;
  let r2 = Routing.of_paths topo paths in
  let loads2 = Routing.link_loads r2 truth in
  let w1 = Workspace.create r1 and w2 = Workspace.create r2 in
  let single = Routechange.estimate [ (w1, loads1) ] in
  let stacked = Routechange.estimate [ (w1, loads1); (w2, loads2) ] in
  let mre e = Metrics.mre ~truth ~estimate:e () in
  Alcotest.(check bool) "rank gain" true (stacked.Routechange.stacked_rank_gain >= 0);
  Alcotest.(check bool)
    (Printf.sprintf "stacked %.4f <= single %.4f"
       (mre stacked.Routechange.estimate) (mre single.Routechange.estimate))
    true
    (mre stacked.Routechange.estimate
    <= mre single.Routechange.estimate +. 1e-6)

let test_routechange_rejects_empty () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Routechange.estimate []);
       false
     with Invalid_argument _ -> true)

let test_mcmc_samples_feasible_posterior () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let r =
    Mcmc.sample ~burn_in:200 ~samples:300 ~thin:3 (ws_of d) ~loads
      ~prior
  in
  Alcotest.(check bool) "null space found" true (r.Mcmc.null_dim > 0);
  (* Posterior quantiles are ordered.  (The mean can legitimately fall
     outside [q05, q95] for heavily skewed marginals, so only the
     quantile ordering is asserted.) *)
  Array.iteri
    (fun i lo ->
      Alcotest.(check bool) "ordered" true (lo <= r.Mcmc.upper.(i) +. 1e-6))
    r.Mcmc.lower;
  (* The chain stays on the feasible polytope: loads reproduced. *)
  Alcotest.(check bool) "load consistent" true
    (Problem.residual_norm d.Dataset.routing ~loads r.Mcmc.mean < 0.02);
  (* Credible intervals are informative: truth within [lower, upper]
     for a large majority of the big demands. *)
  let threshold, _ = Metrics.threshold_for_coverage ~coverage:0.9 truth in
  let covered = ref 0 and total = ref 0 in
  Array.iteri
    (fun i t ->
      if t >= threshold then begin
        incr total;
        if
          t >= r.Mcmc.lower.(i) -. (0.05 *. t)
          && t <= r.Mcmc.upper.(i) +. (0.05 *. t)
        then incr covered
      end)
    truth;
  Alcotest.(check bool)
    (Printf.sprintf "coverage %d/%d" !covered !total)
    true
    (float_of_int !covered >= 0.6 *. float_of_int !total)

let test_mcmc_deterministic_in_seed () =
  let d = Lazy.force small in
  let _, loads = busy_snapshot d in
  let prior = Gravity.simple d.Dataset.routing ~loads in
  let run () =
    (Mcmc.sample ~burn_in:50 ~samples:50 ~thin:2 ~seed:9 (ws_of d)
       ~loads ~prior)
      .Mcmc.mean
  in
  Alcotest.(check bool) "reproducible" true (Vec.equal (run ()) (run ()))

(* ------------------------------------------------------------------ *)
(* Estimator facade                                                    *)
(* ------------------------------------------------------------------ *)

let test_estimator_roundtrip_names () =
  List.iter
    (fun n ->
      Alcotest.(check string) "name roundtrip" n
        (Estimator.name (Estimator.of_name n)))
    (Estimator.all_names ())

let test_estimator_rejects_unknown () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Estimator.of_name "magic");
       false
     with Invalid_argument _ -> true)

let test_estimator_run_all () =
  let d = Lazy.force small in
  let truth, loads = busy_snapshot d in
  let samples = busy_load_matrix d 20 in
  List.iter
    (fun name ->
      let est =
        Estimator.solve (Estimator.of_name name)
          (Workspace.create d.Dataset.routing)
          ~loads ~load_samples:samples
      in
      Alcotest.(check int)
        (name ^ " dimension")
        (Dataset.num_pairs d) (Array.length est);
      Array.iter
        (fun x ->
          Alcotest.(check bool) (name ^ " nonneg") true (x >= -1e-6))
        est;
      let mre = Metrics.mre ~truth ~estimate:est () in
      Alcotest.(check bool)
        (Printf.sprintf "%s mre %.3f finite and sane" name mre)
        true
        (Float.is_finite mre))
    (Estimator.all_names ())

let () =
  Alcotest.run "core"
    [
      ( "metrics",
        [
          Alcotest.test_case "mre basic" `Quick test_mre_basic;
          Alcotest.test_case "threshold" `Quick test_mre_threshold_coverage;
          Alcotest.test_case "perfect" `Quick test_mre_perfect;
          Alcotest.test_case "rank correlation" `Quick test_rank_correlation;
          Alcotest.test_case "rmse / l1" `Quick test_rmse_and_l1;
        ] );
      ( "gravity",
        [
          Alcotest.test_case "node totals" `Quick test_gravity_node_totals;
          Alcotest.test_case "total preserved" `Quick
            test_gravity_preserves_total;
          Alcotest.test_case "rank-one" `Quick test_gravity_exact_on_rank_one;
          Alcotest.test_case "generalized peers" `Quick
            test_generalized_gravity_zeroes_peers;
        ] );
      ( "kruithof",
        [
          Alcotest.test_case "marginals" `Quick test_kruithof_matches_marginals;
          Alcotest.test_case "krupp consistency" `Quick
            test_krupp_consistent_with_loads;
          Alcotest.test_case "krupp improves" `Quick test_krupp_improves_on_prior;
        ] );
      ( "bayes",
        [
          Alcotest.test_case "small sigma = prior" `Quick
            test_bayes_small_sigma_returns_prior;
          Alcotest.test_case "large sigma fits" `Quick
            test_bayes_large_sigma_fits_loads;
          Alcotest.test_case "improves prior" `Quick test_bayes_improves_prior;
        ] );
      ( "entropy",
        [
          Alcotest.test_case "small sigma = prior" `Quick
            test_entropy_small_sigma_returns_prior;
          Alcotest.test_case "large sigma fits" `Quick
            test_entropy_large_sigma_fits_loads;
          Alcotest.test_case "improves prior" `Quick
            test_entropy_improves_prior;
          Alcotest.test_case "nonnegative" `Quick test_entropy_nonnegative;
          Alcotest.test_case "fixed pins" `Quick
            test_entropy_fixed_pins_measured;
          Alcotest.test_case "fixed reduces mre" `Quick
            test_entropy_fixed_reduces_mre;
        ] );
      ( "wcb",
        [
          Alcotest.test_case "contains truth" `Quick test_wcb_contains_truth;
          Alcotest.test_case "ordered" `Quick test_wcb_bounds_ordered;
          Alcotest.test_case "beats trivial" `Quick test_wcb_beats_trivial;
          Alcotest.test_case "midpoint vs gravity" `Quick
            test_wcb_midpoint_better_than_gravity;
          Alcotest.test_case "null-space slack" `Quick
            test_wcb_exact_null_space_slack;
        ] );
      ( "fanout",
        [
          Alcotest.test_case "rows sum to 1" `Quick test_fanout_rows_sum_to_one;
          Alcotest.test_case "recovers constant fanouts" `Quick
            test_fanout_recovers_constant_fanouts;
          Alcotest.test_case "reasonable accuracy" `Quick
            test_fanout_estimate_reasonable;
        ] );
      ( "vardi-cao",
        [
          Alcotest.test_case "ideal poisson" `Slow
            test_vardi_identifiable_on_ideal_poisson;
          Alcotest.test_case "first moment" `Quick
            test_vardi_first_moment_consistent;
          Alcotest.test_case "poisson faith hurts" `Quick
            test_vardi_strong_poisson_faith_hurts_mean_fit;
          Alcotest.test_case "cao runs" `Quick test_cao_reduces_objective;
          Alcotest.test_case "cao = vardi at c=1" `Quick
            test_cao_matches_vardi_at_c1;
        ] );
      ( "combined",
        [
          Alcotest.test_case "greedy monotone" `Slow
            test_combined_greedy_monotone_trend;
          Alcotest.test_case "greedy vs largest" `Slow
            test_combined_greedy_beats_largest_first;
        ] );
      ( "iterative",
        [
          Alcotest.test_case "improves prior" `Quick
            test_iterative_improves_prior;
          Alcotest.test_case "deltas shrink" `Quick
            test_iterative_deltas_shrink;
          Alcotest.test_case "ecmp trivial bound" `Quick
            test_trivial_upper_valid_under_ecmp;
        ] );
      ( "routechange-mcmc",
        [
          Alcotest.test_case "route change identifiability" `Quick
            test_routechange_improves_identifiability;
          Alcotest.test_case "empty configs" `Quick
            test_routechange_rejects_empty;
          Alcotest.test_case "mcmc posterior" `Slow
            test_mcmc_samples_feasible_posterior;
          Alcotest.test_case "mcmc deterministic" `Quick
            test_mcmc_deterministic_in_seed;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "names" `Quick test_estimator_roundtrip_names;
          Alcotest.test_case "unknown" `Quick test_estimator_rejects_unknown;
          Alcotest.test_case "run all" `Slow test_estimator_run_all;
        ] );
    ]
