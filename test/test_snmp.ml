open Tmest_linalg
open Tmest_snmp

let check_float eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Counter                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_accumulates () =
  let c = Counter.create Counter.Bits64 in
  Counter.advance c ~bytes:100.;
  Counter.advance c ~bytes:50.5;
  check_float 1e-9 "value" 150.5 (Counter.read c)

let test_counter_wraps_32 () =
  let c = Counter.create Counter.Bits32 in
  Counter.advance c ~bytes:4294967290.;
  let before = Counter.read c in
  Counter.advance c ~bytes:100.;
  let after = Counter.read c in
  Alcotest.(check bool) "wrapped" true (after < before);
  check_float 1e-3 "delta corrects wrap" 100.
    (Counter.delta ~width:Counter.Bits32 ~previous:before ~current:after)

let test_counter_delta_monotone () =
  check_float 1e-9 "plain" 40.
    (Counter.delta ~width:Counter.Bits64 ~previous:10. ~current:50.)

let test_counter_rejects_negative () =
  let c = Counter.create Counter.Bits64 in
  Alcotest.(check bool) "raises" true
    (try
       Counter.advance c ~bytes:(-1.);
       false
     with Invalid_argument _ -> true)

let poll t_s value = { Counter.t_s; value }

let test_classify_plain_delta () =
  match
    Counter.classify ~width:Counter.Bits64 ~prev:(poll 0. 1000.)
      ~cur:(poll 300. 4000.) ()
  with
  | Counter.Delta d -> check_float 1e-9 "delta" 3000. d
  | _ -> Alcotest.fail "expected Delta"

let test_classify_wrap_delta () =
  (* A single 32-bit wrap at a believable rate stays a Delta. *)
  match
    Counter.classify ~width:Counter.Bits32 ~prev:(poll 0. 4294967000.)
      ~cur:(poll 300. 704.) ()
  with
  | Counter.Delta d -> check_float 1e-3 "wrap-corrected" 1000. d
  | _ -> Alcotest.fail "expected Delta"

let test_classify_duplicate () =
  (match
     Counter.classify ~width:Counter.Bits64 ~prev:(poll 300. 1000.)
       ~cur:(poll 300. 1000.) ()
   with
  | Counter.Duplicate -> ()
  | _ -> Alcotest.fail "same timestamp must be Duplicate");
  match
    Counter.classify ~width:Counter.Bits64 ~prev:(poll 300. 1000.)
      ~cur:(poll 200. 900.) ()
  with
  | Counter.Duplicate -> ()
  | _ -> Alcotest.fail "reordered poll must be Duplicate"

let test_classify_reset_64 () =
  (* 64-bit counters cannot wrap between polls: backwards = restart. *)
  match
    Counter.classify ~width:Counter.Bits64 ~prev:(poll 0. 1e15)
      ~cur:(poll 300. 42.) ()
  with
  | Counter.Reset v -> check_float 1e-9 "baseline" 42. v
  | _ -> Alcotest.fail "expected Reset"

let test_classify_reset_32_masquerading_as_wrap () =
  (* A mid-window 32-bit reset: the new reading sits just below the old
     one, so the wrap correction reports ~4.2 GB in 300 s (~112 Mbps).
     Against the link's actual 50 Mbps capacity that is impossible —
     a Reset, not a wrap. *)
  match
    Counter.classify ~width:Counter.Bits32 ~max_rate_bps:50e6
      ~prev:(poll 0. 4.0e9) ~cur:(poll 300. 3.9e9) ()
  with
  | Counter.Reset v -> check_float 1e-9 "baseline" 3.9e9 v
  | Counter.Delta d -> Alcotest.failf "bogus delta %g accepted" d
  | Counter.Duplicate -> Alcotest.fail "not a duplicate"

let test_classify_fast_link_wrap_still_delta () =
  (* On a faster link the same readings are a believable single wrap
     and must remain a Delta (default 100 Gbps ceiling). *)
  match
    Counter.classify ~width:Counter.Bits32 ~prev:(poll 0. 4.0e9)
      ~cur:(poll 300. 3.9e9) ()
  with
  | Counter.Delta d ->
      check_float 1e-3 "wrap-corrected" (3.9e9 -. 4.0e9 +. 4294967296.) d
  | _ -> Alcotest.fail "expected Delta under a 100 Gbps ceiling"

(* ------------------------------------------------------------------ *)
(* Classification properties                                           *)
(* ------------------------------------------------------------------ *)

(* The wrap-vs-reset decision is a strict inequality against the
   believability ceiling: a delta implying a rate of *exactly*
   [max_rate_bps] is still a measurement, one ulp above is a reset.
   Inter-poll times are drawn as powers of two so the ceiling
   [d * 8 / dt] reconstructs [d * 8] exactly when classify multiplies
   it back — the property tests the decision boundary itself, not
   float rounding. *)
let test_classify_ceiling_boundary_prop () =
  let gen rng =
    let dt = 2. ** float_of_int (Prop.int_in ~lo:(-1) ~hi:9 rng) in
    let v0 = Prop.float_in ~lo:0. ~hi:1e12 rng in
    let bytes = Prop.float_in ~lo:1. ~hi:1e9 rng in
    (dt, v0, (v0 +. bytes) -. v0)
  in
  let pp (dt, v0, d) = Printf.sprintf "dt=%g v0=%g d=%g" dt v0 d in
  Prop.run ~count:200 ~seed:31 ~name:"ceiling boundary" ~pp gen
    (fun (dt, v0, d) ->
      d > 0.
      &&
      let ceiling = d *. 8. /. dt in
      let verdict max_rate_bps =
        Counter.classify ~width:Counter.Bits64 ~max_rate_bps
          ~prev:(poll 0. v0)
          ~cur:(poll dt (v0 +. d))
          ()
      in
      (match verdict ceiling with Counter.Delta _ -> true | _ -> false)
      && match verdict (Float.pred ceiling) with
         | Counter.Reset v -> v = v0 +. d
         | _ -> false)

let test_classify_nonpositive_dt_prop () =
  (* Retransmitted or reordered polls: any non-positive inter-poll time
     is a Duplicate, for both widths and any counter movement. *)
  let gen rng =
    let t0 = Prop.float_in ~lo:0. ~hi:1000. rng in
    let dt = Prop.float_in ~lo:(-600.) ~hi:0. rng in
    let width = Prop.choose [| Counter.Bits32; Counter.Bits64 |] rng in
    let v0 = Prop.float_in ~lo:0. ~hi:4e9 rng in
    let v1 = Prop.float_in ~lo:0. ~hi:4e9 rng in
    (t0, dt, width, v0, v1)
  in
  Prop.run ~count:200 ~seed:37 ~name:"non-positive dt" gen
    (fun (t0, dt, width, v0, v1) ->
      match
        Counter.classify ~width ~prev:(poll t0 v0)
          ~cur:(poll (t0 +. dt) v1)
          ()
      with
      | Counter.Duplicate -> true
      | _ -> false)

let test_classify_wrap_recovers_bytes_prop () =
  (* A single 32-bit wrap at a believable rate: classify must undo the
     wrap and recover the true byte count wherever the wrap falls in
     the interval. *)
  let two32 = 4294967296. in
  let gen rng =
    let bytes = Prop.float_in ~lo:1e6 ~hi:1e8 rng in
    let frac = Prop.float_in ~lo:0.01 ~hi:0.99 rng in
    (bytes, bytes *. frac)
  in
  let pp (bytes, u) = Printf.sprintf "bytes=%g u=%g" bytes u in
  Prop.run ~count:200 ~seed:41 ~name:"wrap recovery" ~pp gen
    (fun (bytes, u) ->
      match
        Counter.classify ~width:Counter.Bits32
          ~prev:(poll 0. (two32 -. u))
          ~cur:(poll 300. (bytes -. u))
          ()
      with
      | Counter.Delta d -> Prop.close d bytes
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Stream classification at the ceiling                                *)
(* ------------------------------------------------------------------ *)

let stream_config max_rate_bps =
  {
    Collect.default_config with
    Collect.jitter_s = 0.;
    loss_prob = 0.;
    width = Counter.Bits64;
    max_rate_bps;
  }

let test_stream_ceiling_rate_believed () =
  (* Links running at exactly the configured ceiling: every tick's
     delta sits on the strict-inequality boundary and must be believed
     round after round — no resets, no missing entries. *)
  let links = 4 and rate = 1e8 in
  let stream = Collect.Stream.create (stream_config rate) ~links in
  let true_loads = Vec.create links rate in
  for k = 0 to 5 do
    let t = Collect.Stream.tick stream ~true_loads in
    Alcotest.(check int) (Printf.sprintf "tick %d index" k) k
      t.Collect.Stream.tick;
    Alcotest.(check int) "no resets" 0 t.Collect.Stream.resets;
    Alcotest.(check int) "no missing" 0 t.Collect.Stream.missing;
    Array.iter (fun v -> check_float 1. "rate recovered" rate v)
      t.Collect.Stream.loads
  done;
  Alcotest.(check int) "no resets overall" 0
    (Collect.Stream.total_resets stream)

let test_stream_above_ceiling_reads_as_reset () =
  (* The same stream fed 5% above the ceiling: every poll is physically
     impossible, so each round classifies as a reset, contributes no
     measurement (nan), and re-anchors the baseline — which makes the
     next round impossible again. *)
  let links = 3 and rate = 1e8 in
  let stream = Collect.Stream.create (stream_config rate) ~links in
  let true_loads = Vec.create links (rate *. 1.05) in
  for k = 0 to 3 do
    let t = Collect.Stream.tick stream ~true_loads in
    Alcotest.(check int)
      (Printf.sprintf "tick %d: all links reset" k)
      links t.Collect.Stream.resets;
    Alcotest.(check int) "all entries missing" links t.Collect.Stream.missing;
    Array.iter
      (fun v ->
        Alcotest.(check bool) "nan where discarded" true (Float.is_nan v))
      t.Collect.Stream.loads
  done;
  Alcotest.(check int) "resets accumulated" (4 * links)
    (Collect.Stream.total_resets stream)

(* ------------------------------------------------------------------ *)
(* Collection pipeline                                                 *)
(* ------------------------------------------------------------------ *)

let const_rates pairs v = fun _ -> Vec.create pairs v

let test_collect_constant_rate_exact () =
  (* Piecewise-constant truth, no loss: recovered rate must match the
     truth despite jitter, thanks to the real-interval correction. *)
  let pairs = 3 and samples = 20 in
  let config =
    { Collect.default_config with Collect.loss_prob = 0.; seed = 5 }
  in
  let r =
    Collect.run config ~true_rates:(const_rates pairs 1e8) ~samples ~pairs
  in
  for k = 0 to samples - 1 do
    for p = 0 to pairs - 1 do
      Alcotest.(check bool) "present" true r.Collect.present.(k).(p);
      check_float 1. "rate" 1e8 (Mat.get r.Collect.rates k p)
    done
  done

let test_collect_varying_rate_close () =
  let pairs = 2 and samples = 50 in
  let truth k =
    Vec.of_list [ 1e8 *. (1. +. (0.5 *. sin (float_of_int k /. 5.))); 5e7 ]
  in
  let config =
    { Collect.default_config with Collect.loss_prob = 0.; seed = 7 }
  in
  let r = Collect.run config ~true_rates:truth ~samples ~pairs in
  let err = Collect.mean_absolute_rate_error r ~true_rates:truth in
  (* Jitter mixes ~10s of a 300s interval: a few percent error at most. *)
  Alcotest.(check bool) (Printf.sprintf "error %.4f < 0.03" err) true
    (err < 0.03)

let test_collect_loss_marks_missing () =
  let pairs = 1 and samples = 200 in
  let config =
    { Collect.default_config with Collect.loss_prob = 0.2; seed = 11 }
  in
  let r =
    Collect.run config ~true_rates:(const_rates pairs 1e8) ~samples ~pairs
  in
  Alcotest.(check bool) "some lost" true (r.Collect.polls_lost > 0);
  let missing = ref 0 in
  Array.iter
    (fun row -> if not row.(0) then incr missing)
    r.Collect.present;
  Alcotest.(check bool) "gaps recorded" true (!missing > 0);
  (* Even across gaps, the gap-average of a constant rate is exact. *)
  for k = 0 to samples - 1 do
    check_float 1. "gap average" 1e8 (Mat.get r.Collect.rates k 0)
  done

let test_collect_32bit_wrap_recovered () =
  (* 1 Mbps over 300 s = 37.5 MB per interval; a 32-bit counter wraps
     every ~114 intervals.  Single wraps must be corrected. *)
  let pairs = 1 and samples = 250 in
  let config =
    {
      Collect.default_config with
      Collect.loss_prob = 0.;
      width = Counter.Bits32;
      seed = 3;
    }
  in
  let r =
    Collect.run config ~true_rates:(const_rates pairs 1e6) ~samples ~pairs
  in
  for k = 0 to samples - 1 do
    check_float 1. "wrap-corrected" 1e6 (Mat.get r.Collect.rates k 0)
  done

let test_collect_dataset_end_to_end () =
  (* Full pipeline over a small synthetic dataset: recovered TM close to
     ground truth demand-by-demand. *)
  let spec =
    { (Tmest_traffic.Spec.scaled ~nodes:5 ~directed_links:22
         Tmest_traffic.Spec.europe)
      with Tmest_traffic.Spec.seed = 42; samples = 60 }
  in
  let d = Tmest_traffic.Dataset.generate spec in
  let pairs = Tmest_traffic.Dataset.num_pairs d in
  let truth k = Tmest_traffic.Dataset.demand_at d k in
  let config =
    { Collect.default_config with Collect.loss_prob = 0.005; seed = 9 }
  in
  let r = Collect.run config ~true_rates:truth ~samples:60 ~pairs in
  let err = Collect.mean_absolute_rate_error r ~true_rates:truth in
  Alcotest.(check bool) (Printf.sprintf "pipeline error %.4f < 0.05" err) true
    (err < 0.05)

let () =
  Alcotest.run "snmp"
    [
      ( "counter",
        [
          Alcotest.test_case "accumulates" `Quick test_counter_accumulates;
          Alcotest.test_case "32-bit wrap" `Quick test_counter_wraps_32;
          Alcotest.test_case "delta" `Quick test_counter_delta_monotone;
          Alcotest.test_case "negative" `Quick test_counter_rejects_negative;
        ] );
      ( "classify",
        [
          Alcotest.test_case "plain delta" `Quick test_classify_plain_delta;
          Alcotest.test_case "wrap delta" `Quick test_classify_wrap_delta;
          Alcotest.test_case "duplicate" `Quick test_classify_duplicate;
          Alcotest.test_case "64-bit reset" `Quick test_classify_reset_64;
          Alcotest.test_case "32-bit reset vs wrap" `Quick
            test_classify_reset_32_masquerading_as_wrap;
          Alcotest.test_case "fast-link wrap" `Quick
            test_classify_fast_link_wrap_still_delta;
        ] );
      ( "classify-prop",
        [
          Alcotest.test_case "ceiling boundary" `Quick
            test_classify_ceiling_boundary_prop;
          Alcotest.test_case "non-positive dt" `Quick
            test_classify_nonpositive_dt_prop;
          Alcotest.test_case "wrap recovery" `Quick
            test_classify_wrap_recovers_bytes_prop;
        ] );
      ( "stream",
        [
          Alcotest.test_case "ceiling rate believed" `Quick
            test_stream_ceiling_rate_believed;
          Alcotest.test_case "above ceiling reads as reset" `Quick
            test_stream_above_ceiling_reads_as_reset;
        ] );
      ( "collect",
        [
          Alcotest.test_case "constant exact" `Quick
            test_collect_constant_rate_exact;
          Alcotest.test_case "varying close" `Quick
            test_collect_varying_rate_close;
          Alcotest.test_case "loss handling" `Quick
            test_collect_loss_marks_missing;
          Alcotest.test_case "32-bit wrap recovery" `Quick
            test_collect_32bit_wrap_recovered;
          Alcotest.test_case "dataset end-to-end" `Quick
            test_collect_dataset_end_to_end;
        ] );
    ]
