(* Method-conformance harness: every estimator in the registry — old
   and new alike — runs through one shared battery of contracts, so a
   method added to [Estimator.all_names] is enrolled here with zero
   test changes:

   - bit-identical estimates at pool sizes 1, 2 and 4;
   - bit-identical solve through a [?degrade] policy on clean inputs;
   - sparse-vs-dense MRE agreement to 1e-9, or an asserted refusal
     exactly for the methods [Estimator.supports_sparse] rules out;
   - a warm-started re-solve of the identical problem lands back on
     the cold answer: bit-identical for methods without a warm key,
     within solver tolerance for the iterative ones;
   - randomized load-consistent problems keep every estimate finite,
     non-negative and correctly sized (Prop).

   The newcomers suite pins the MRE of the three latest methods on
   both paper-scale datasets (the Europe pins must stay equal to the
   per-method constants in test_golden.ml, which cover the full
   registry there), and asserts the headline accuracy claim: iterated
   tomogravity strictly beats the one-shot Kruithof adjustment on both
   networks.  Regenerate after an intentional numerical change with:
     METHODS_PRINT=1 dune exec test/test_methods.exe *)

module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Core = Tmest_core
module Pool = Tmest_parallel.Pool
module Routing = Tmest_net.Routing
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec

let all_names () = Core.Estimator.all_names ()

let small_spec =
  { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with Spec.seed = 7 }

let small = lazy (Dataset.generate small_spec)
let window = 10

(* The reference problem on a dataset: busy-period midpoint snapshot
   plus the trailing busy window as the sample matrix — the same
   inputs the golden suite solves. *)
let inputs d =
  let spec = d.Dataset.spec in
  let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let loads = Dataset.link_loads_at d k in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let ks = Array.sub ks (Array.length ks - window) window in
  let samples =
    Mat.init window (Dataset.num_links d) (fun i j ->
        (Dataset.link_loads_at d ks.(i)).(j))
  in
  (loads, samples)

let solve ?opts ?pool ?mode m d =
  let ws = Core.Workspace.create ?pool ?mode d.Dataset.routing in
  let loads, samples = inputs d in
  Core.Estimator.solve ?opts m ws ~loads ~load_samples:samples

let bits_equal u v =
  Array.length u = Array.length v
  && Array.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       u v

(* ------------------------------------------------------------------ *)
(* Determinism across pool sizes                                       *)
(* ------------------------------------------------------------------ *)

let test_jobs_bit_identity () =
  let d = Lazy.force small in
  List.iter
    (fun name ->
      let m = Core.Estimator.of_name name in
      let at jobs = solve ~pool:(Pool.create ~jobs) m d in
      let base = at 1 in
      List.iter
        (fun jobs ->
          let e = at jobs in
          Array.iteri
            (fun i x ->
              if Int64.bits_of_float x <> Int64.bits_of_float e.(i) then
                Alcotest.failf
                  "%s: pair %d differs between jobs=1 and jobs=%d (%h vs %h)"
                  name i jobs x e.(i))
            base)
        [ 2; 4 ])
    (all_names ())

(* ------------------------------------------------------------------ *)
(* Degraded-mode no-op on clean inputs                                 *)
(* ------------------------------------------------------------------ *)

let test_degrade_clean_bit_identity () =
  let d = Lazy.force small in
  let opts = Core.Estimator.Options.make ~degrade:Core.Degrade.default () in
  List.iter
    (fun name ->
      let m = Core.Estimator.of_name name in
      Alcotest.(check bool)
        (name ^ " clean degrade is bit-identical")
        true
        (bits_equal (solve m d) (solve ~opts m d)))
    (all_names ())

(* ------------------------------------------------------------------ *)
(* Sparse-vs-dense agreement, refusal iff dense-only                   *)
(* ------------------------------------------------------------------ *)

let test_sparse_dense_agreement () =
  let d = Lazy.force small in
  (* Precond_auto resolves to Jacobi only in sparse mode, which would
     compare two different iteration paths; pin it off (the sparse
     preconditioned path has its own goldens in test_precond.ml). *)
  let opts =
    Core.Estimator.Options.make ~precond:Core.Workspace.Precond_none ()
  in
  let truth, busy_truth =
    let spec = d.Dataset.spec in
    let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
    (Dataset.demand_at d k, Dataset.busy_mean_demand d)
  in
  List.iter
    (fun name ->
      let m = Core.Estimator.of_name name in
      let reference =
        if Core.Estimator.uses_time_series m then busy_truth else truth
      in
      let mre mode =
        let estimate = solve ~opts ?mode m d in
        Core.Metrics.mre ~truth:reference ~estimate ()
      in
      if Core.Estimator.supports_sparse m then
        Alcotest.(check (float 1e-9))
          (name ^ " sparse = dense") (mre None)
          (mre (Some Core.Workspace.Sparse))
      else
        match mre (Some Core.Workspace.Sparse) with
        | _ ->
            Alcotest.failf "%s: dense-only method ran on a sparse workspace"
              name
        | exception Invalid_argument _ -> ())
    (all_names ())

(* ------------------------------------------------------------------ *)
(* Warm-started re-solve lands on the cold answer                      *)
(* ------------------------------------------------------------------ *)

(* Relative L2 deviation allowed between the cold solve and a warm
   re-solve of the identical problem.  Methods absent from this table
   have no warm key ([warm:true] is a no-op) or are deterministic in
   their seed, so they must reproduce the cold answer bit for bit.
   The iterative entries mirror test_warmstart.ml: strictly convex
   objectives re-converge tightly, fanout's block-simplex problem is
   flatter, and cao's non-convex line search is path-dependent. *)
let warm_tolerances =
  [
    ("entropy", 1e-4);
    ("bayes", 1e-3);
    ("vardi", 1e-8);
    ("fanout", 1e-1);
    ("cao", 5e-1);
    ("cumulant", 1e-3);
  ]

let rel_dist a b = Vec.dist2 a b /. (1. +. Vec.norm2 a)

let test_warm_matches_cold () =
  let d = Lazy.force small in
  List.iter
    (fun name ->
      let m = Core.Estimator.of_name name in
      (* One shared workspace per method: the first warm solve misses
         the cache (cold path) and stores its solution; the second
         re-converges from that stored optimum. *)
      let ws = Core.Workspace.create d.Dataset.routing in
      let loads, samples = inputs d in
      let run warm =
        Core.Estimator.solve
          ~opts:(Core.Estimator.Options.make ~warm ())
          m ws ~loads ~load_samples:samples
      in
      let cold = run false in
      ignore (run true);
      let again = run true in
      match List.assoc_opt name warm_tolerances with
      | None ->
          Alcotest.(check bool)
            (name ^ " warm re-solve is bit-identical")
            true (bits_equal cold again)
      | Some tol ->
          let dv = rel_dist cold again in
          if not (dv <= tol) then
            Alcotest.failf "%s: warm re-solve deviates by %.3e (> %.0e)" name
              dv tol)
    (all_names ())

(* ------------------------------------------------------------------ *)
(* Randomized load-consistent problems (Prop)                          *)
(* ------------------------------------------------------------------ *)

(* Demands jittered around the dataset's busy snapshot, loads derived
   through the routing matrix, sample rows rescaled copies: every
   input is exactly load-consistent, so each method must return a
   finite non-negative vector of the right dimension — no LP
   infeasibility, no NaN leakage from a moment system, no negative
   overshoot past the projection. *)
let test_random_problems_valid () =
  let d = Lazy.force small in
  let routing = d.Dataset.routing in
  let p = Dataset.num_pairs d in
  let spec = d.Dataset.spec in
  let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let base = Dataset.demand_at d k in
  let gen rng =
    let scale = Prop.float_in ~lo:0.5 ~hi:2.0 rng in
    let jitter = Prop.vec ~lo:0.8 ~hi:1.2 p rng in
    let rows = Prop.vec ~lo:0.9 ~hi:1.1 window rng in
    (scale, jitter, rows)
  in
  let pp (scale, _, _) = Printf.sprintf "scale=%.3f" scale in
  Prop.run ~count:4 ~seed:23 ~name:"estimates valid" ~pp gen
    (fun (scale, jitter, rows) ->
      let s = Vec.init p (fun i -> scale *. jitter.(i) *. base.(i)) in
      let loads = Routing.link_loads routing s in
      let samples =
        Mat.init window (Array.length loads) (fun i j ->
            rows.(i) *. loads.(j))
      in
      List.for_all
        (fun name ->
          let m = Core.Estimator.of_name name in
          let ws = Core.Workspace.create routing in
          let e = Core.Estimator.solve m ws ~loads ~load_samples:samples in
          Array.length e = p
          && Array.for_all (fun x -> Float.is_finite x && x >= -1e-6) e)
        (all_names ()))

(* ------------------------------------------------------------------ *)
(* Newcomer golden pins, Europe and America                            *)
(* ------------------------------------------------------------------ *)

let newcomer_goldens =
  [
    ( "europe",
      [
        ("tomogravity_iter", 0.074961900565772219);
        ("cumulant", 0.28729125637895636);
        ("mcmc_int", 0.17422869778303313);
      ] );
    ( "america",
      [
        ("tomogravity_iter", 0.29598219645505419);
        ("cumulant", 0.50527877095850493);
        ("mcmc_int", 0.45799797033911072);
      ] );
  ]

let dataset_of = function
  | "europe" -> Dataset.europe ()
  | "america" -> Dataset.america ()
  | n -> invalid_arg n

let newcomer_mres network =
  let d = dataset_of network in
  let truth, busy_truth =
    let spec = d.Dataset.spec in
    let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
    (Dataset.demand_at d k, Dataset.busy_mean_demand d)
  in
  List.map
    (fun name ->
      let m = Core.Estimator.of_name name in
      let reference =
        if Core.Estimator.uses_time_series m then busy_truth else truth
      in
      let estimate = solve m d in
      (name, Core.Metrics.mre ~truth:reference ~estimate ()))
    [ "tomogravity_iter"; "cumulant"; "mcmc_int" ]

let test_newcomer_goldens network () =
  let expected = List.assoc network newcomer_goldens in
  List.iter2
    (fun (name, want) (name', got) ->
      Alcotest.(check string) "method order" name name';
      Alcotest.(check (float 1e-9)) (network ^ "/" ^ name) want got)
    expected (newcomer_mres network)

(* The accuracy claim behind the iterated method: re-imposing the link
   constraints between IPF passes must strictly beat the one-shot
   Kruithof adjustment of the same gravity prior — on both networks. *)
let test_tomogravity_iter_beats_kruithof network () =
  let d = dataset_of network in
  let spec = d.Dataset.spec in
  let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let truth = Dataset.demand_at d k in
  let mre name =
    let estimate = solve (Core.Estimator.of_name name) d in
    Core.Metrics.mre ~truth ~estimate ()
  in
  let iter = mre "tomogravity_iter" and oneshot = mre "kruithof" in
  Alcotest.(check bool)
    (Printf.sprintf "%s: iterated %.4f < one-shot %.4f" network iter oneshot)
    true (iter < oneshot)

let () =
  if Sys.getenv_opt "METHODS_PRINT" <> None then begin
    List.iter
      (fun (network, _) ->
        Printf.printf "    ( %S,\n      [\n" network;
        List.iter
          (fun (name, v) -> Printf.printf "        (%S, %.17g);\n" name v)
          (newcomer_mres network);
        Printf.printf "      ] );\n")
      newcomer_goldens;
    exit 0
  end;
  Alcotest.run "methods"
    [
      ( "conformance",
        [
          Alcotest.test_case "bit-identical at jobs 1/2/4" `Quick
            test_jobs_bit_identity;
          Alcotest.test_case "clean degrade bit-identical" `Quick
            test_degrade_clean_bit_identity;
          Alcotest.test_case "sparse agrees with dense" `Quick
            test_sparse_dense_agreement;
          Alcotest.test_case "warm re-solve matches cold" `Quick
            test_warm_matches_cold;
          Alcotest.test_case "random problems stay valid" `Slow
            test_random_problems_valid;
        ] );
      ( "newcomers",
        [
          Alcotest.test_case "europe pins" `Quick
            (test_newcomer_goldens "europe");
          Alcotest.test_case "america pins" `Quick
            (test_newcomer_goldens "america");
          Alcotest.test_case "europe: iterated beats one-shot" `Quick
            (test_tomogravity_iter_beats_kruithof "europe");
          Alcotest.test_case "america: iterated beats one-shot" `Quick
            (test_tomogravity_iter_beats_kruithof "america");
        ] );
    ]
