open Tmest_experiments

let check_float eps = Alcotest.(check (float eps))

(* One reduced-scale context shared by all cases (building it is the
   expensive part). *)
let ctx = lazy (Ctx.create ~fast:true ())

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let all_series report =
  List.filter_map
    (function Report.Series s -> Some s | _ -> None)
    report.Report.items

let series_like report label_part =
  List.filter (fun s -> contains s.Report.label label_part)
    (all_series report)

let run id = (Registry.find id).Registry.run (Lazy.force ctx)

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Report.sparkline [||]);
  let s = Report.sparkline [| 0.; 1. |] in
  Alcotest.(check bool) "two blocks" true (String.length s > 0);
  (* A constant series renders mid-level blocks, no crash. *)
  ignore (Report.sparkline [| 2.; 2.; 2. |])

let test_report_csv () =
  let r =
    {
      Report.id = "x";
      title = "t";
      items =
        [
          Report.series "s" [| (1., 2.) |];
          Report.table ~columns:[ "m"; "a" ] [ ("row", [| 3. |]) ];
          Report.note "ignored";
        ];
    }
  in
  let csv = Report.to_csv r in
  Alcotest.(check bool) "series row" true (contains csv "series,s,1,2");
  Alcotest.(check bool) "table row" true (contains csv "table,row,a,3")

let test_report_print_no_crash () =
  let r = run "fig1" in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Report.pp ppf r;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "nonempty" true (Buffer.length buf > 100)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_complete () =
  (* Every table and figure of the evaluation section is registered. *)
  let expected =
    [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8";
      "fig9"; "fig10"; "fig11"; "tab1"; "fig12"; "fig13"; "fig14"; "fig15";
      "fig16"; "tab2"; "ext1"; "ext2"; "ext3"; "ext4"; "ext5"; "ext6"; "ext7"; "ext8"; "ext9"; "ext10"; "ext11"; "ext12"; "sens"; "scale" ]
  in
  Alcotest.(check (list string)) "ids" expected (Registry.ids ())

let test_registry_find () =
  Alcotest.(check string) "found" "tab2" (Registry.find "tab2").Registry.id;
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Registry.find "fig99");
       false
     with Not_found -> true)

(* ------------------------------------------------------------------ *)
(* Every experiment runs and has content                               *)
(* ------------------------------------------------------------------ *)

let test_all_experiments_produce_content () =
  List.iter
    (fun e ->
      let r = e.Registry.run (Lazy.force ctx) in
      Alcotest.(check string) "id matches" e.Registry.id r.Report.id;
      Alcotest.(check bool)
        (e.Registry.id ^ " has items")
        true
        (List.length r.Report.items > 0))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Shape assertions on key experiments                                 *)
(* ------------------------------------------------------------------ *)

let test_fig1_diurnal_range () =
  let r = run "fig1" in
  let series = all_series r in
  Alcotest.(check int) "two networks" 2 (List.length series);
  List.iter
    (fun s ->
      Array.iter
        (fun (x, y) ->
          Alcotest.(check bool) "x in hours" true (x >= 0. && x <= 24.);
          Alcotest.(check bool) "normalized" true (y >= 0. && y <= 1.0001))
        s.Report.points)
    series

let test_fig2_cumulative_monotone () =
  let r = run "fig2" in
  List.iter
    (fun s ->
      let prev = ref 0. in
      Array.iter
        (fun (_, y) ->
          Alcotest.(check bool) "monotone" true (y >= !prev -. 1e-9);
          prev := y)
        s.Report.points;
      check_float 1e-6 "ends at 1" 1. !prev)
    (all_series r)

let test_fig6_strong_fit () =
  let r = run "fig6" in
  (* Both fits are reported with strong r2 in the note. *)
  let count = ref 0 in
  List.iter
    (function
      | Report.Note s when contains s "fit:" -> incr count
      | _ -> ())
    r.Report.items;
  Alcotest.(check int) "two fits" 2 !count

let test_fig13_regularized_beats_prior () =
  let r = run "fig13" in
  List.iter
    (fun s ->
      let ys = Array.map snd s.Report.points in
      let best = Array.fold_left Stdlib.min ys.(0) ys in
      let leftmost = ys.(0) in
      Alcotest.(check bool)
        (s.Report.label ^ ": best sweep value improves on prior end")
        true
        (best <= leftmost +. 1e-9))
    (all_series r)

let test_tab1_poisson_faith_catastrophic () =
  let r = run "tab1" in
  match
    List.find_map
      (function Report.Table t -> Some t | _ -> None)
      r.Report.items
  with
  | None -> Alcotest.fail "tab1 has no table"
  | Some t ->
      let weak = List.assoc "sigma^-2 = 0.01" t.Report.rows in
      let strong = List.assoc "sigma^-2 = 1" t.Report.rows in
      Array.iteri
        (fun i w ->
          Alcotest.(check bool) "sigma^-2 = 1 is much worse" true
            (strong.(i) > 2. *. w))
        weak

let test_fig16_mre_decreases () =
  let r = run "fig16" in
  match series_like r "greedy" with
  | [ s ] ->
      let ys = Array.map snd s.Report.points in
      let first = ys.(0) and last = ys.(Array.length ys - 1) in
      Alcotest.(check bool)
        (Printf.sprintf "greedy MRE drops %.3f -> %.3f" first last)
        true (last < first)
  | _ -> Alcotest.fail "expected exactly one greedy series"

let test_tab2_expected_orderings () =
  let r = run "tab2" in
  match
    List.find_map
      (function Report.Table t -> Some t | _ -> None)
      r.Report.items
  with
  | None -> Alcotest.fail "tab2 has no table"
  | Some t ->
      let v row col = (List.assoc row t.Report.rows).(col) in
      (* Paper's headline orderings, per network (0 = Europe, 1 = US):
         regularized methods beat the raw gravity prior; Vardi is the
         worst of the paper's methods. *)
      List.iter
        (fun col ->
          Alcotest.(check bool) "entropy beats gravity" true
            (v "Entropy w. gravity prior" col < v "Simple gravity prior" col);
          Alcotest.(check bool) "vardi worst" true
            (v "Vardi" col > v "Entropy w. gravity prior" col))
        [ 0; 1 ]

let () =
  Alcotest.run "experiments"
    [
      ( "report",
        [
          Alcotest.test_case "sparkline" `Quick test_sparkline;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "print" `Quick test_report_print_no_crash;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
        ] );
      ( "runs",
        [
          Alcotest.test_case "all produce content" `Slow
            test_all_experiments_produce_content;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "fig1 diurnal" `Quick test_fig1_diurnal_range;
          Alcotest.test_case "fig2 cumulative" `Quick
            test_fig2_cumulative_monotone;
          Alcotest.test_case "fig6 fits" `Quick test_fig6_strong_fit;
          Alcotest.test_case "fig13 sweep" `Slow
            test_fig13_regularized_beats_prior;
          Alcotest.test_case "tab1 ordering" `Slow
            test_tab1_poisson_faith_catastrophic;
          Alcotest.test_case "fig16 decreasing" `Slow test_fig16_mre_decreases;
          Alcotest.test_case "tab2 orderings" `Slow
            test_tab2_expected_orderings;
        ] );
    ]
