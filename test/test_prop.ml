(* Property tests (via the zero-dependency helper in [Prop]): the
   destination-passing kernels against their allocating counterparts,
   pooled matvecs against sequential ones, projection invariants, and
   Kruithof's marginal-preservation guarantee. *)

module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Pool = Tmest_parallel.Pool
module Projections = Tmest_opt.Projections
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec
module Odpairs = Tmest_net.Odpairs

(* ------------------------------------------------- into-kernels ----- *)

let dim_gen = Prop.int_in ~lo:1 ~hi:64

let vec_pair rng =
  let n = dim_gen rng in
  (Prop.vec ~lo:(-5.) ~hi:5. n rng, Prop.vec ~lo:(-5.) ~hi:5. n rng)

let test_into_kernels () =
  let binary name into alloc =
    Prop.run ~seed:101 ~name vec_pair (fun (u, v) ->
        let dst = Vec.zeros (Array.length u) in
        into u v ~dst;
        Prop.vec_bits_equal dst (alloc u v));
    (* Writing into the first operand must give the same bits. *)
    Prop.run ~seed:102 ~name:(name ^ " (aliased)") vec_pair (fun (u, v) ->
        let expected = alloc u v in
        let u' = Vec.copy u in
        into u' v ~dst:u';
        Prop.vec_bits_equal u' expected)
  in
  binary "add_into" Vec.add_into Vec.add;
  binary "sub_into" Vec.sub_into Vec.sub;
  binary "mul_into" Vec.mul_into Vec.mul;
  Prop.run ~seed:103 ~name:"div_into"
    (fun rng ->
      let n = dim_gen rng in
      (Prop.vec ~lo:(-5.) ~hi:5. n rng, Prop.vec ~lo:0.5 ~hi:5. n rng))
    (fun (u, v) ->
      let dst = Vec.zeros (Array.length u) in
      Vec.div_into u v ~dst;
      Prop.vec_bits_equal dst (Vec.div u v));
  Prop.run ~seed:104 ~name:"scale_into"
    (fun rng ->
      (Prop.float_in ~lo:(-3.) ~hi:3. rng, Prop.vec ~lo:(-5.) ~hi:5. 33 rng))
    (fun (a, v) ->
      let dst = Vec.zeros (Array.length v) in
      Vec.scale_into a v ~dst;
      Prop.vec_bits_equal dst (Vec.scale a v));
  Prop.run ~seed:105 ~name:"axpy_into (aliased y)"
    (fun rng ->
      let a = Prop.float_in ~lo:(-3.) ~hi:3. rng in
      let x, y = vec_pair rng in
      (a, x, y))
    (fun (a, x, y) ->
      let expected = Vec.axpy a x y in
      let y' = Vec.copy y in
      Vec.axpy_into a x y' ~dst:y';
      Prop.vec_bits_equal y' expected);
  Prop.run ~seed:106 ~name:"clamp_nonneg_into"
    (fun rng -> Prop.vec ~lo:(-5.) ~hi:5. (dim_gen rng) rng)
    (fun v ->
      let dst = Vec.zeros (Array.length v) in
      Vec.clamp_nonneg_into v ~dst;
      Prop.vec_bits_equal dst (Array.map (fun x -> Stdlib.max 0. x) v));
  Prop.run ~seed:107 ~name:"blit_into"
    (fun rng -> Prop.vec ~lo:(-5.) ~hi:5. (dim_gen rng) rng)
    (fun v ->
      let dst = Vec.zeros (Array.length v) in
      Vec.blit_into v ~dst;
      Prop.vec_bits_equal dst v)

(* ------------------------------------------- pooled matvec bits ----- *)

let sparse_gen rng =
  let rows = Prop.int_in ~lo:1 ~hi:40 rng in
  let cols = Prop.int_in ~lo:1 ~hi:40 rng in
  let nnz = Prop.int_in ~lo:0 ~hi:(rows * cols / 2) rng in
  let entries =
    List.init nnz (fun _ ->
        ( Prop.int_in ~lo:0 ~hi:(rows - 1) rng,
          Prop.int_in ~lo:0 ~hi:(cols - 1) rng,
          Prop.float_in ~lo:(-2.) ~hi:2. rng ))
  in
  let m = Csr.of_triplets ~rows ~cols entries in
  (m, Prop.vec ~lo:(-3.) ~hi:3. cols rng)

let test_pooled_matvec () =
  let pool = Pool.create ~jobs:2 in
  Prop.run ~seed:201 ~count:60 ~name:"csr matvec pool=2"
    sparse_gen
    (fun (m, x) -> Prop.vec_bits_equal (Csr.matvec m x) (Csr.matvec ~pool m x));
  Prop.run ~seed:202 ~count:60 ~name:"csr matvec_into pool=2" sparse_gen
    (fun (m, x) ->
      let d1 = Vec.zeros (Csr.rows m) and d2 = Vec.zeros (Csr.rows m) in
      Csr.matvec_into m x ~dst:d1;
      Csr.matvec_into ~pool m x ~dst:d2;
      Prop.vec_bits_equal d1 d2);
  Prop.run ~seed:203 ~count:60 ~name:"csr tmatvec_into" sparse_gen
    (fun (m, _x) ->
      let y = Prop.vec ~lo:(-3.) ~hi:3. (Csr.rows m) (Tmest_stats.Rng.create 5) in
      let dst = Vec.zeros (Csr.cols m) in
      Csr.tmatvec_into m y ~dst;
      Prop.vec_bits_equal dst (Csr.tmatvec m y))

(* ------------------------------------------ matrix-free operators --- *)

module Op = Tmest_linalg.Op

let test_op_adjoint () =
  (* <A x, y> = <x, A^T y>: the defining identity of the adjoint, over
     random CSR operators and their compositions. *)
  Prop.run ~seed:501 ~count:60 ~name:"of_csr adjoint consistency" sparse_gen
    (fun (m, x) ->
      let op = Op.of_csr m in
      let y =
        Prop.vec ~lo:(-3.) ~hi:3. (Csr.rows m) (Tmest_stats.Rng.create 9)
      in
      Prop.close ~tol:1e-12 (Vec.dot (Op.apply op x) y)
        (Vec.dot x (Op.apply_t op y)));
  Prop.run ~seed:502 ~count:60 ~name:"of_csr matches dense" sparse_gen
    (fun (m, x) ->
      let op = Op.of_csr m in
      let dense = Csr.to_dense m in
      let y =
        Prop.vec ~lo:(-3.) ~hi:3. (Csr.rows m) (Tmest_stats.Rng.create 11)
      in
      Prop.vec_close ~tol:1e-12 (Op.apply op x) (Mat.matvec dense x)
      && Prop.vec_close ~tol:1e-12 (Op.apply_t op y)
           (Mat.matvec (Mat.transpose dense) y))

let test_op_normal () =
  Prop.run ~seed:503 ~count:60 ~name:"normal op = explicit Gram" sparse_gen
    (fun (m, x) ->
      let n = Op.normal (Op.of_csr m) in
      let g = Csr.gram m in
      Prop.vec_close ~tol:1e-9 (Op.apply n x) (Mat.matvec g x)
      (* symmetric: apply_t is apply *)
      && Prop.vec_close ~tol:1e-12 (Op.apply n x) (Op.apply_t n x));
  Prop.run ~seed:504 ~count:40 ~name:"norm2_est = dense power iteration"
    sparse_gen
    (fun (m, _x) ->
      let est = Op.norm2_est (Op.normal (Op.of_csr m)) in
      let dense = Tmest_opt.Fista.lipschitz_of_gram (Csr.gram m) in
      (* Same start vector, iteration count and margin — only the
         floating-point association differs between the two paths. *)
      Prop.close ~tol:1e-6 est dense)

let test_op_compositions () =
  let square_gen rng =
    let n = Prop.int_in ~lo:1 ~hi:24 rng in
    ( Mat.init n n (fun _ _ -> Prop.float_in ~lo:(-2.) ~hi:2. rng),
      Prop.vec ~lo:(-3.) ~hi:3. n rng,
      Prop.vec ~lo:(-3.) ~hi:3. n rng,
      Prop.float_in ~lo:(-2.) ~hi:2. rng )
  in
  Prop.run ~seed:505 ~count:60 ~name:"diag/shift/add/outer vs dense"
    square_gen
    (fun (a, d, x, c) ->
      let n = Array.length d in
      let op = Op.of_mat a in
      Prop.vec_close ~tol:1e-12 (Op.apply (Op.diag d) x) (Vec.mul d x)
      && Prop.vec_close ~tol:1e-12
           (Op.apply (Op.shift op c) x)
           (Vec.axpy c x (Mat.matvec a x))
      && Prop.vec_close ~tol:1e-12
           (Op.apply (Op.add_diag op d) x)
           (Vec.add (Mat.matvec a x) (Vec.mul d x))
      && Prop.vec_close ~tol:1e-12
           (Op.apply (Op.add op (Op.scale c (Op.identity n))) x)
           (Vec.axpy c x (Mat.matvec a x))
      && Prop.vec_close ~tol:1e-12
           (Op.apply (Op.outer d x) x)
           (Vec.scale (Vec.dot x x) d));
  (* Hutchinson on a diagonal operator is exact for every sample count:
     z^T D z = sum_i d_i z_i^2 = trace D for Rademacher z. *)
  Prop.run ~seed:506 ~count:60 ~name:"trace_est exact on diagonals"
    (fun rng ->
      ( Prop.vec ~lo:(-4.) ~hi:4. (Prop.int_in ~lo:1 ~hi:50 rng) rng,
        Prop.int_in ~lo:1 ~hi:8 rng ))
    (fun (d, samples) ->
      Prop.close ~tol:1e-9 (Op.trace_est ~samples (Op.diag d)) (Vec.sum d))

let test_workspace_sparse_ops () =
  (* The workspace's cached operators against the dense artifacts a
     twin dense-mode workspace materializes for the same routing. *)
  let d =
    Dataset.generate
      { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with
        Spec.seed = 13 }
  in
  let module W = Tmest_core.Workspace in
  let routing = d.Dataset.routing in
  let dense_ws = W.create routing in
  let sparse_ws = W.create ~mode:W.Sparse routing in
  let pairs = Dataset.num_pairs d in
  Prop.run ~seed:507 ~count:40 ~name:"workspace normal_op = dense gram"
    (Prop.vec ~lo:(-2.) ~hi:2. pairs)
    (fun x ->
      Prop.vec_close ~tol:1e-9
        (Op.apply (W.normal_op sparse_ws) x)
        (Mat.matvec (W.gram dense_ws) x));
  Prop.run ~seed:508 ~count:40 ~name:"workspace gram_sq_op = dense gram^2"
    (Prop.vec ~lo:(-2.) ~hi:2. pairs)
    (fun x ->
      Prop.vec_close ~tol:1e-9
        (Op.apply (W.gram_sq_op sparse_ws) x)
        (Mat.matvec (W.gram_sq dense_ws) x));
  Alcotest.(check bool)
    "op_norm agrees across modes" true
    (Prop.close ~tol:1e-9 (W.op_norm sparse_ws) (W.op_norm dense_ws))

(* --------------------------------------------- projections ---------- *)

let test_simplex () =
  let gen rng =
    let n = Prop.int_in ~lo:1 ~hi:50 rng in
    let total = Prop.float_in ~lo:0.1 ~hi:20. rng in
    (total, Prop.vec ~lo:(-5.) ~hi:5. n rng)
  in
  Prop.run ~seed:301 ~name:"simplex feasibility" gen (fun (total, v) ->
      let p = Projections.simplex ~total v in
      Array.for_all (fun x -> x >= 0.) p && Prop.close (Vec.sum p) total);
  Prop.run ~seed:302 ~name:"simplex idempotence" gen (fun (total, v) ->
      let p = Projections.simplex ~total v in
      Prop.vec_close ~tol:1e-9 p (Projections.simplex ~total p));
  Prop.run ~seed:303 ~count:60 ~name:"block simplex = per-block simplex"
    (fun rng ->
      let blocks = Prop.int_in ~lo:1 ~hi:5 rng in
      let n = Prop.int_in ~lo:blocks ~hi:40 rng in
      (* Every block non-empty: first [blocks] coordinates cycle. *)
      let block =
        Array.init n (fun i ->
            if i < blocks then i else Prop.int_in ~lo:0 ~hi:(blocks - 1) rng)
      in
      (blocks, block, Prop.vec ~lo:(-4.) ~hi:4. n rng))
    (fun (blocks, block, v) ->
      let part = Projections.block_partition ~block in
      let dst = Vec.zeros (Array.length v) in
      Projections.block_simplex_into part v ~dst;
      let ok = ref true in
      for b = 0 to blocks - 1 do
        let idx =
          List.filter
            (fun i -> block.(i) = b)
            (List.init (Array.length v) Fun.id)
        in
        let sub = Array.of_list (List.map (fun i -> v.(i)) idx) in
        let expected = Projections.simplex sub in
        List.iteri
          (fun k i -> if not (Prop.close dst.(i) expected.(k)) then ok := false)
          idx
      done;
      !ok)

(* ----------------------------------------------- kruithof ----------- *)

let test_kruithof_marginals () =
  let d =
    Dataset.generate
      { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with
        Spec.seed = 7 }
  in
  let routing = d.Dataset.routing in
  let ws = Tmest_core.Workspace.create routing in
  let nodes = Dataset.num_nodes d in
  let pairs = Dataset.num_pairs d in
  Prop.run ~seed:401 ~count:25 ~name:"kruithof preserves node marginals"
    (fun rng ->
      ( Prop.vec ~lo:1e5 ~hi:1e8 pairs rng,
        Prop.vec ~lo:1e5 ~hi:1e8 pairs rng ))
    (fun (truth, prior) ->
      let loads = Tmest_net.Routing.link_loads routing truth in
      let s = Tmest_core.Kruithof.adjust ws ~loads ~prior in
      let te, tx = Tmest_core.Gravity.node_totals routing ~loads in
      let ok = ref true in
      for n = 0 to nodes - 1 do
        let row = ref 0. and col = ref 0. in
        for m = 0 to nodes - 1 do
          if m <> n then begin
            row := !row +. s.(Odpairs.index ~nodes ~src:n ~dst:m);
            col := !col +. s.(Odpairs.index ~nodes ~src:m ~dst:n)
          end
        done;
        if not (Prop.close ~tol:1e-6 !row te.(n)) then ok := false;
        if not (Prop.close ~tol:1e-6 !col tx.(n)) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "prop"
    [
      ( "kernels",
        [
          Alcotest.test_case "into vs allocating" `Quick test_into_kernels;
          Alcotest.test_case "pooled matvec bits" `Quick test_pooled_matvec;
        ] );
      ( "operators",
        [
          Alcotest.test_case "adjoint" `Quick test_op_adjoint;
          Alcotest.test_case "normal equations" `Quick test_op_normal;
          Alcotest.test_case "compositions" `Quick test_op_compositions;
          Alcotest.test_case "workspace sparse ops" `Quick
            test_workspace_sparse_ops;
        ] );
      ( "projections",
        [ Alcotest.test_case "simplex" `Quick test_simplex ] );
      ( "kruithof",
        [
          Alcotest.test_case "marginal preservation" `Quick
            test_kruithof_marginals;
        ] );
    ]
