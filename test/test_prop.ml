(* Property tests (via the zero-dependency helper in [Prop]): the
   destination-passing kernels against their allocating counterparts,
   pooled matvecs against sequential ones, projection invariants, and
   Kruithof's marginal-preservation guarantee. *)

module Vec = Tmest_linalg.Vec
module Mat = Tmest_linalg.Mat
module Csr = Tmest_linalg.Csr
module Pool = Tmest_parallel.Pool
module Projections = Tmest_opt.Projections
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec
module Odpairs = Tmest_net.Odpairs

(* ------------------------------------------------- into-kernels ----- *)

let dim_gen = Prop.int_in ~lo:1 ~hi:64

let vec_pair rng =
  let n = dim_gen rng in
  (Prop.vec ~lo:(-5.) ~hi:5. n rng, Prop.vec ~lo:(-5.) ~hi:5. n rng)

let test_into_kernels () =
  let binary name into alloc =
    Prop.run ~seed:101 ~name vec_pair (fun (u, v) ->
        let dst = Vec.zeros (Array.length u) in
        into u v ~dst;
        Prop.vec_bits_equal dst (alloc u v));
    (* Writing into the first operand must give the same bits. *)
    Prop.run ~seed:102 ~name:(name ^ " (aliased)") vec_pair (fun (u, v) ->
        let expected = alloc u v in
        let u' = Vec.copy u in
        into u' v ~dst:u';
        Prop.vec_bits_equal u' expected)
  in
  binary "add_into" Vec.add_into Vec.add;
  binary "sub_into" Vec.sub_into Vec.sub;
  binary "mul_into" Vec.mul_into Vec.mul;
  Prop.run ~seed:103 ~name:"div_into"
    (fun rng ->
      let n = dim_gen rng in
      (Prop.vec ~lo:(-5.) ~hi:5. n rng, Prop.vec ~lo:0.5 ~hi:5. n rng))
    (fun (u, v) ->
      let dst = Vec.zeros (Array.length u) in
      Vec.div_into u v ~dst;
      Prop.vec_bits_equal dst (Vec.div u v));
  Prop.run ~seed:104 ~name:"scale_into"
    (fun rng ->
      (Prop.float_in ~lo:(-3.) ~hi:3. rng, Prop.vec ~lo:(-5.) ~hi:5. 33 rng))
    (fun (a, v) ->
      let dst = Vec.zeros (Array.length v) in
      Vec.scale_into a v ~dst;
      Prop.vec_bits_equal dst (Vec.scale a v));
  Prop.run ~seed:105 ~name:"axpy_into (aliased y)"
    (fun rng ->
      let a = Prop.float_in ~lo:(-3.) ~hi:3. rng in
      let x, y = vec_pair rng in
      (a, x, y))
    (fun (a, x, y) ->
      let expected = Vec.axpy a x y in
      let y' = Vec.copy y in
      Vec.axpy_into a x y' ~dst:y';
      Prop.vec_bits_equal y' expected);
  Prop.run ~seed:106 ~name:"clamp_nonneg_into"
    (fun rng -> Prop.vec ~lo:(-5.) ~hi:5. (dim_gen rng) rng)
    (fun v ->
      let dst = Vec.zeros (Array.length v) in
      Vec.clamp_nonneg_into v ~dst;
      Prop.vec_bits_equal dst (Array.map (fun x -> Stdlib.max 0. x) v));
  Prop.run ~seed:107 ~name:"blit_into"
    (fun rng -> Prop.vec ~lo:(-5.) ~hi:5. (dim_gen rng) rng)
    (fun v ->
      let dst = Vec.zeros (Array.length v) in
      Vec.blit_into v ~dst;
      Prop.vec_bits_equal dst v)

(* ------------------------------------------- pooled matvec bits ----- *)

let sparse_gen rng =
  let rows = Prop.int_in ~lo:1 ~hi:40 rng in
  let cols = Prop.int_in ~lo:1 ~hi:40 rng in
  let nnz = Prop.int_in ~lo:0 ~hi:(rows * cols / 2) rng in
  let entries =
    List.init nnz (fun _ ->
        ( Prop.int_in ~lo:0 ~hi:(rows - 1) rng,
          Prop.int_in ~lo:0 ~hi:(cols - 1) rng,
          Prop.float_in ~lo:(-2.) ~hi:2. rng ))
  in
  let m = Csr.of_triplets ~rows ~cols entries in
  (m, Prop.vec ~lo:(-3.) ~hi:3. cols rng)

let test_pooled_matvec () =
  let pool = Pool.create ~jobs:2 in
  Prop.run ~seed:201 ~count:60 ~name:"csr matvec pool=2"
    sparse_gen
    (fun (m, x) -> Prop.vec_bits_equal (Csr.matvec m x) (Csr.matvec ~pool m x));
  Prop.run ~seed:202 ~count:60 ~name:"csr matvec_into pool=2" sparse_gen
    (fun (m, x) ->
      let d1 = Vec.zeros (Csr.rows m) and d2 = Vec.zeros (Csr.rows m) in
      Csr.matvec_into m x ~dst:d1;
      Csr.matvec_into ~pool m x ~dst:d2;
      Prop.vec_bits_equal d1 d2);
  Prop.run ~seed:203 ~count:60 ~name:"csr tmatvec_into" sparse_gen
    (fun (m, _x) ->
      let y = Prop.vec ~lo:(-3.) ~hi:3. (Csr.rows m) (Tmest_stats.Rng.create 5) in
      let dst = Vec.zeros (Csr.cols m) in
      Csr.tmatvec_into m y ~dst;
      Prop.vec_bits_equal dst (Csr.tmatvec m y))

(* --------------------------------------------- projections ---------- *)

let test_simplex () =
  let gen rng =
    let n = Prop.int_in ~lo:1 ~hi:50 rng in
    let total = Prop.float_in ~lo:0.1 ~hi:20. rng in
    (total, Prop.vec ~lo:(-5.) ~hi:5. n rng)
  in
  Prop.run ~seed:301 ~name:"simplex feasibility" gen (fun (total, v) ->
      let p = Projections.simplex ~total v in
      Array.for_all (fun x -> x >= 0.) p && Prop.close (Vec.sum p) total);
  Prop.run ~seed:302 ~name:"simplex idempotence" gen (fun (total, v) ->
      let p = Projections.simplex ~total v in
      Prop.vec_close ~tol:1e-9 p (Projections.simplex ~total p));
  Prop.run ~seed:303 ~count:60 ~name:"block simplex = per-block simplex"
    (fun rng ->
      let blocks = Prop.int_in ~lo:1 ~hi:5 rng in
      let n = Prop.int_in ~lo:blocks ~hi:40 rng in
      (* Every block non-empty: first [blocks] coordinates cycle. *)
      let block =
        Array.init n (fun i ->
            if i < blocks then i else Prop.int_in ~lo:0 ~hi:(blocks - 1) rng)
      in
      (blocks, block, Prop.vec ~lo:(-4.) ~hi:4. n rng))
    (fun (blocks, block, v) ->
      let part = Projections.block_partition ~block in
      let dst = Vec.zeros (Array.length v) in
      Projections.block_simplex_into part v ~dst;
      let ok = ref true in
      for b = 0 to blocks - 1 do
        let idx =
          List.filter
            (fun i -> block.(i) = b)
            (List.init (Array.length v) Fun.id)
        in
        let sub = Array.of_list (List.map (fun i -> v.(i)) idx) in
        let expected = Projections.simplex sub in
        List.iteri
          (fun k i -> if not (Prop.close dst.(i) expected.(k)) then ok := false)
          idx
      done;
      !ok)

(* ----------------------------------------------- kruithof ----------- *)

let test_kruithof_marginals () =
  let d =
    Dataset.generate
      { (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with
        Spec.seed = 7 }
  in
  let routing = d.Dataset.routing in
  let ws = Tmest_core.Workspace.create routing in
  let nodes = Dataset.num_nodes d in
  let pairs = Dataset.num_pairs d in
  Prop.run ~seed:401 ~count:25 ~name:"kruithof preserves node marginals"
    (fun rng ->
      ( Prop.vec ~lo:1e5 ~hi:1e8 pairs rng,
        Prop.vec ~lo:1e5 ~hi:1e8 pairs rng ))
    (fun (truth, prior) ->
      let loads = Tmest_net.Routing.link_loads routing truth in
      let s = Tmest_core.Kruithof.adjust ws ~loads ~prior in
      let te, tx = Tmest_core.Gravity.node_totals routing ~loads in
      let ok = ref true in
      for n = 0 to nodes - 1 do
        let row = ref 0. and col = ref 0. in
        for m = 0 to nodes - 1 do
          if m <> n then begin
            row := !row +. s.(Odpairs.index ~nodes ~src:n ~dst:m);
            col := !col +. s.(Odpairs.index ~nodes ~src:m ~dst:n)
          end
        done;
        if not (Prop.close ~tol:1e-6 !row te.(n)) then ok := false;
        if not (Prop.close ~tol:1e-6 !col tx.(n)) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "prop"
    [
      ( "kernels",
        [
          Alcotest.test_case "into vs allocating" `Quick test_into_kernels;
          Alcotest.test_case "pooled matvec bits" `Quick test_pooled_matvec;
        ] );
      ( "projections",
        [ Alcotest.test_case "simplex" `Quick test_simplex ] );
      ( "kruithof",
        [
          Alcotest.test_case "marginal preservation" `Quick
            test_kruithof_marginals;
        ] );
    ]
