open Tmest_linalg
open Tmest_net
open Tmest_io


let sample_topo () =
  Topology.generate ~name:"eu" ~seed:4 ~nodes:12 ~directed_links:72
    Topology.european_cities

(* ------------------------------------------------------------------ *)
(* Topology round-trips                                                *)
(* ------------------------------------------------------------------ *)

let test_topology_roundtrip () =
  let t = sample_topo () in
  let t' = Topology_io.of_string ~name:"mem" (Topology_io.to_string t) in
  Alcotest.(check int) "nodes" (Topology.num_nodes t) (Topology.num_nodes t');
  Alcotest.(check int) "links" (Topology.num_links t) (Topology.num_links t');
  (* Interior structure preserved: same (src, dst, capacity, metric)
     multiset. *)
  let sig_of topo =
    Topology.interior_links topo
    |> List.map (fun l ->
           (l.Topology.src, l.Topology.dst, l.Topology.capacity,
            l.Topology.metric))
    |> List.sort compare
  in
  Alcotest.(check bool) "same edges" true (sig_of t = sig_of t');
  Array.iteri
    (fun i n ->
      let n' = t'.Topology.nodes.(i) in
      Alcotest.(check string) "name" n.Topology.name n'.Topology.name;
      Alcotest.(check bool) "kind" true (n.Topology.kind = n'.Topology.kind))
    t.Topology.nodes

let test_topology_file_roundtrip () =
  let t = sample_topo () in
  let path = Filename.temp_file "tmest" ".topo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Topology_io.write path t;
      let t' = Topology_io.read path in
      Alcotest.(check int) "links" (Topology.num_links t)
        (Topology.num_links t'))

let test_topology_peering_kind_preserved () =
  let t = Topology.set_node_kind (sample_topo ()) 3 Topology.Peering in
  let t' = Topology_io.of_string ~name:"mem" (Topology_io.to_string t) in
  Alcotest.(check bool) "peering" true
    (t'.Topology.nodes.(3).Topology.kind = Topology.Peering)

let expect_failure f =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (f ());
       false
     with Failure _ | Invalid_argument _ -> true)

let test_topology_rejects_garbage () =
  expect_failure (fun () -> Topology_io.of_string ~name:"m" "nonsense 1 2\n");
  expect_failure (fun () ->
      Topology_io.of_string ~name:"m" "node 0 A access 0 0\nedge 0 5 1e9 1\n");
  expect_failure (fun () ->
      (* duplicate node id *)
      Topology_io.of_string ~name:"m"
        "node 0 A access 0 0\nnode 0 B access 0 0\n");
  expect_failure (fun () -> Topology_io.of_string ~name:"m" "# only comments\n")

(* ------------------------------------------------------------------ *)
(* Traffic-matrix series round-trips                                   *)
(* ------------------------------------------------------------------ *)

let test_series_roundtrip () =
  let nodes = 5 in
  let p = Odpairs.count nodes in
  let m =
    Mat.init 4 p (fun k pair ->
        if (k + pair) mod 3 = 0 then 0. else float_of_int ((k * 100) + pair))
  in
  let s = Tm_io.series_to_string ~nodes m in
  let m' = Tm_io.series_of_string ~name:"mem" ~nodes s in
  Alcotest.(check bool) "roundtrip" true (Mat.equal ~eps:1e-6 m m')

let test_series_file_roundtrip () =
  let nodes = 4 in
  let p = Odpairs.count nodes in
  let m = Mat.init 3 p (fun k pair -> float_of_int (k + pair) *. 1e6) in
  let path = Filename.temp_file "tmest" ".tm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tm_io.write_series path ~nodes m;
      let m' = Tm_io.read_series path ~nodes in
      Alcotest.(check bool) "roundtrip" true (Mat.equal ~eps:1e-3 m m'))

let test_series_rejects_bad_input () =
  expect_failure (fun () ->
      Tm_io.series_of_string ~name:"m" ~nodes:3 "0 1 5.0\n" (* no header *));
  expect_failure (fun () ->
      Tm_io.series_of_string ~name:"m" ~nodes:3 "tm 0\n0 0 5.0\n" (* diag *));
  expect_failure (fun () ->
      Tm_io.series_of_string ~name:"m" ~nodes:3 "tm 0\n0 1 -2.\n");
  expect_failure (fun () ->
      Tm_io.series_of_string ~name:"m" ~nodes:3 "tm 1\n0 1 2.\n" (* gap *));
  expect_failure (fun () -> Tm_io.series_of_string ~name:"m" ~nodes:3 "")

(* ------------------------------------------------------------------ *)
(* Loads round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let test_loads_roundtrip () =
  let loads = Vec.init 7 (fun i -> float_of_int i *. 1.5e8) in
  let path = Filename.temp_file "tmest" ".loads" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tm_io.write_loads path loads;
      let loads' = Tm_io.read_loads path ~links:7 in
      Alcotest.(check bool) "roundtrip" true (Vec.equal ~eps:1e-3 loads loads'))

let test_loads_rejects_missing_link () =
  let path = Filename.temp_file "tmest" ".loads" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tm_io.write_loads path (Vec.ones 3);
      expect_failure (fun () -> Tm_io.read_loads path ~links:5))

(* ------------------------------------------------------------------ *)
(* End-to-end: exported dataset re-imported and estimated              *)
(* ------------------------------------------------------------------ *)

let test_export_import_estimate () =
  let d =
    Tmest_traffic.Dataset.generate
      { (Tmest_traffic.Spec.scaled ~nodes:6 ~directed_links:28
           Tmest_traffic.Spec.europe)
        with Tmest_traffic.Spec.seed = 77; samples = 30 }
  in
  let nodes = Tmest_traffic.Dataset.num_nodes d in
  let topo_s = Topology_io.to_string d.Tmest_traffic.Dataset.topo in
  let tm_s =
    Tm_io.series_to_string ~nodes
      d.Tmest_traffic.Dataset.truth.Tmest_traffic.Demand_gen.demands
  in
  (* A downstream user reloads both and runs the estimator. *)
  let topo = Topology_io.of_string ~name:"mem" topo_s in
  let series = Tm_io.series_of_string ~name:"mem" ~nodes tm_s in
  let routing = Routing.shortest_path topo in
  let truth = Mat.row series 20 in
  let loads = Routing.link_loads routing truth in
  let prior = Tmest_core.Gravity.simple routing ~loads in
  let est =
    (Tmest_core.Entropy.estimate
       (Tmest_core.Workspace.create routing)
       ~loads ~prior ~sigma2:1000.)
      .Tmest_core.Entropy.estimate
  in
  let mre = Tmest_core.Metrics.mre ~truth ~estimate:est () in
  Alcotest.(check bool)
    (Printf.sprintf "estimation works on reloaded data (MRE %.3f)" mre)
    true
    (Float.is_finite mre && mre < 1.)

let () =
  Alcotest.run "io"
    [
      ( "topology",
        [
          Alcotest.test_case "roundtrip" `Quick test_topology_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick
            test_topology_file_roundtrip;
          Alcotest.test_case "peering preserved" `Quick
            test_topology_peering_kind_preserved;
          Alcotest.test_case "rejects garbage" `Quick
            test_topology_rejects_garbage;
        ] );
      ( "series",
        [
          Alcotest.test_case "roundtrip" `Quick test_series_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick
            test_series_file_roundtrip;
          Alcotest.test_case "rejects bad input" `Quick
            test_series_rejects_bad_input;
        ] );
      ( "loads",
        [
          Alcotest.test_case "roundtrip" `Quick test_loads_roundtrip;
          Alcotest.test_case "missing link" `Quick
            test_loads_rejects_missing_link;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "export/import/estimate" `Quick
            test_export_import_estimate;
        ] );
    ]
