(* Golden regression: per-method MRE on the seeded full-scale Europe
   problem, pinned to 1e-9.  The same constants must hold at pool sizes
   1, 2 and 4 — the solver stack promises bit-identical results at
   every job count, so any drift here is either a numerical regression
   or a broken determinism invariant.  The bit-identity case asserts
   the stronger form directly: Int64-identical estimates on the
   reference busy window across all three job counts.

   Regenerate after an intentional numerical change with:
     GOLDEN_PRINT=1 dune exec test/test_golden.exe *)

module Mat = Tmest_linalg.Mat
module Core = Tmest_core
module Pool = Tmest_parallel.Pool
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec

let goldens =
  [
    ("gravity", 0.27738950303982757);
    ("kruithof", 0.18748744357310587);
    ("entropy", 0.078707193965058);
    ("bayes", 0.16582487109346156);
    ("wcb", 0.26419235520861623);
    ("fanout", 0.3537328906472631);
    ("vardi", 0.9503596697622243);
    ("cao", 0.65832782533456269);
    ("tomogravity_iter", 0.074961900565772219);
    ("cumulant", 0.28729125637895636);
    ("mcmc_int", 0.17422869778303313);
  ]

let solve_all ~jobs =
  let d = Dataset.europe () in
  let pool = Pool.create ~jobs in
  let ws = Core.Workspace.create ~pool d.Dataset.routing in
  let spec = d.Dataset.spec in
  let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let truth = Dataset.demand_at d k in
  let busy_truth = Dataset.busy_mean_demand d in
  let loads = Dataset.link_loads_at d k in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let window = 10 in
  let ks = Array.sub ks (Array.length ks - window) window in
  let samples =
    Mat.init window (Dataset.num_links d) (fun i j ->
        (Dataset.link_loads_at d ks.(i)).(j))
  in
  List.map
    (fun name ->
      let m = Core.Estimator.of_name name in
      let estimate = Core.Estimator.solve m ws ~loads ~load_samples:samples in
      let reference =
        if Core.Estimator.uses_time_series m then busy_truth else truth
      in
      (name, estimate, reference))
    (Core.Estimator.all_names ())

let mres ~jobs =
  List.map
    (fun (name, estimate, reference) ->
      (name, Core.Metrics.mre ~truth:reference ~estimate ()))
    (solve_all ~jobs)

(* The determinism contract asserted at the bit level: every method's
   estimate on the reference busy window is Int64-identical at jobs 1,
   2 and 4.  Stronger than the 1e-9 MRE pins above, which would let a
   reordered parallel reduction slip through as long as it stayed
   small. *)
let bit_identity () =
  let base = solve_all ~jobs:1 in
  List.iter
    (fun jobs ->
      List.iter2
        (fun (name, e1, _) (name', ej, _) ->
          Alcotest.(check string) "method order" name name';
          Array.iteri
            (fun i x ->
              if Int64.bits_of_float x <> Int64.bits_of_float ej.(i) then
                Alcotest.failf
                  "%s: pair %d differs between jobs=1 and jobs=%d (%h vs %h)"
                  name i jobs x ej.(i))
            e1)
        base (solve_all ~jobs))
    [ 2; 4 ]

let check_against ~jobs () =
  List.iter2
    (fun (name, expected) (name', got) ->
      Alcotest.(check string) "method order" name name';
      Alcotest.(check (float 1e-9)) name expected got)
    goldens (mres ~jobs)

(* Sparse-vs-dense identity: Europe sits far below the sparse gate, so
   forcing sparse mode runs every matrix-free branch (operator normal
   equations, Z-factor gram-square, power-iteration Lipschitz) on a
   problem where the dense fast path provides the reference.  Every
   dual-path method must land on the same MRE to 1e-9; the LP-based
   bounds are a documented dense-only exclusion and must refuse. *)
let sparse_vs_dense ~jobs () =
  let d = Dataset.europe () in
  let pool = Pool.create ~jobs in
  let spec = d.Dataset.spec in
  let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let truth = Dataset.demand_at d k in
  let busy_truth = Dataset.busy_mean_demand d in
  let loads = Dataset.link_loads_at d k in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let window = 10 in
  let ks = Array.sub ks (Array.length ks - window) window in
  let samples =
    Mat.init window (Dataset.num_links d) (fun i j ->
        (Dataset.link_loads_at d ks.(i)).(j))
  in
  let dense = Core.Workspace.create ~pool d.Dataset.routing in
  let sparse =
    Core.Workspace.create ~pool ~mode:Core.Workspace.Sparse d.Dataset.routing
  in
  Alcotest.(check bool) "mode forced" true (Core.Workspace.is_sparse sparse);
  (* Precond_auto resolves differently per mode (Jacobi when sparse,
     none when dense), which would make this comparison test two
     different iterations paths; pin preconditioning off so the two
     modes run the same algorithm.  The preconditioned sparse path gets
     its own goldens in test_precond.ml. *)
  let opts =
    Core.Estimator.Options.make ~precond:Core.Workspace.Precond_none ()
  in
  List.iter
    (fun name ->
      let m = Core.Estimator.of_name name in
      let reference =
        if Core.Estimator.uses_time_series m then busy_truth else truth
      in
      let mre ws =
        let estimate =
          Core.Estimator.solve ~opts m ws ~loads ~load_samples:samples
        in
        Core.Metrics.mre ~truth:reference ~estimate ()
      in
      if not (Core.Estimator.supports_sparse m) then
        match mre sparse with
        | _ -> Alcotest.failf "%s must refuse on a sparse-mode workspace" name
        | exception Invalid_argument _ -> ()
      else Alcotest.(check (float 1e-9)) name (mre dense) (mre sparse))
    (Core.Estimator.all_names ())

(* Scan-API pins: the refactor collapsing the old [scan_busy] /
   [busy_loads] / [replay] entry points into [Ctx.Scan] promised bit
   identity with what they produced.  Each constant is an FNV-style
   hash over the full result series — snapshot keys and every
   estimate's IEEE-754 bit pattern — so a single flipped bit anywhere
   in a scan fails the pin.  Cold scans and the window matrix must
   hash identically at every pool size; the warm cao scan is pinned
   per job count, because warm chains are per-chunk by design and the
   chunk layout (hence cao's path-dependent line search) legitimately
   differs with the pool size. *)
module Ctx = Tmest_experiments.Ctx

let fnv acc v = Int64.add (Int64.mul acc 0x100000001b3L) v

let scan_hash results =
  List.fold_left
    (fun acc (k, est) ->
      Array.fold_left
        (fun acc v -> fnv acc (Int64.bits_of_float v))
        (fnv acc (Int64.of_int k))
        est)
    0xcbf29ce484222325L results

let mat_hash m =
  let acc = ref 0xcbf29ce484222325L in
  for i = 0 to Mat.rows m - 1 do
    for j = 0 to Mat.cols m - 1 do
      acc := fnv !acc (Int64.bits_of_float (Mat.get m i j))
    done
  done;
  !acc

(* The same per-snapshot load series a [Busy { window = 5; steps = 3 }]
   source compiles internally, as an explicit vector array — the
   [Windows] source fed with it must produce bit-identical estimates
   (only the snapshot labels differ: window-end positions instead of
   dataset sample indices). *)
let busy_series d ~window ~steps =
  let ks = Array.of_list (Dataset.busy_samples d) in
  let base = Array.length ks - steps - window + 1 in
  Array.init (steps + window - 1) (fun j -> Dataset.link_loads_at d ks.(base + j))

let scan_hashes ~jobs =
  let ctx = Ctx.create ~fast:true ~jobs () in
  let net = ctx.Ctx.europe in
  let run ?opts ?tag source est =
    Ctx.Scan.run net
      (Core.Estimator.of_name est)
      (Ctx.Scan.make ?opts ?tag source)
  in
  let warm = Core.Estimator.Options.make ~warm:true () in
  [
    ( "scan-cold-cao",
      scan_hash (run (Ctx.Scan.Busy { window = 5; steps = 3 }) "cao") );
    ( "scan-cold-entropy",
      scan_hash (run (Ctx.Scan.Busy { window = 5; steps = 3 }) "entropy") );
    ( "scan-warm-cao",
      scan_hash
        (run ~opts:warm ~tag:"probe"
           (Ctx.Scan.Busy { window = 5; steps = 4 })
           "cao") );
    ( "replay-cold-cao",
      scan_hash (run (Ctx.Scan.Replay { window = 5; windows = 4 }) "cao") );
    ( "windows-cold-cao",
      scan_hash
        (run
           (Ctx.Scan.Windows
              {
                window = 5;
                loads = busy_series net.Ctx.dataset ~window:5 ~steps:3;
              })
           "cao") );
    ("samples-w4", mat_hash (Ctx.Scan.samples net ~window:4));
  ]

let scan_goldens ~jobs =
  [
    ("scan-cold-cao", 0xaf7c4825285e0550L);
    ("scan-cold-entropy", 0xa0313d41e5379041L);
    ( "scan-warm-cao",
      if jobs = 1 then 0x595c7502c6191338L else 0xf2314abce0aaa86aL );
    ("replay-cold-cao", 0xe40cc54a8e85ea82L);
    ("windows-cold-cao", 0x4d59991207fc3f45L);
    ("samples-w4", 0x15624626cc596205L);
  ]

(* Semantic coverage for the [Windows] source beyond the hash pin: fed
   with exactly the series a [Busy] source compiles, the estimates must
   be bit-identical window for window — only the snapshot labels
   change (window-end offsets instead of dataset sample indices). *)
let windows_matches_busy () =
  let ctx = Ctx.create ~fast:true ~jobs:1 () in
  let net = ctx.Ctx.europe in
  let window = 5 and steps = 3 in
  let est = Core.Estimator.of_name "cao" in
  let busy =
    Ctx.Scan.run net est (Ctx.Scan.make (Ctx.Scan.Busy { window; steps }))
  in
  let win =
    Ctx.Scan.run net est
      (Ctx.Scan.make
         (Ctx.Scan.Windows
            { window; loads = busy_series net.Ctx.dataset ~window ~steps }))
  in
  Alcotest.(check int) "scan length" (List.length busy) (List.length win);
  List.iteri
    (fun i ((_, eb), (kw, ew)) ->
      Alcotest.(check int) "windows snapshot label" (i + window - 1) kw;
      Array.iteri
        (fun j x ->
          if Int64.bits_of_float x <> Int64.bits_of_float ew.(j) then
            Alcotest.failf "windows vs busy: pair %d differs at step %d" j i)
        eb)
    (List.combine busy win)

let check_scan ~jobs () =
  List.iter2
    (fun (name, expected) (name', got) ->
      Alcotest.(check string) "scan order" name name';
      if got <> expected then
        Alcotest.failf "%s (jobs=%d): hash %016Lx, pinned %016Lx" name jobs got
          expected)
    (scan_goldens ~jobs) (scan_hashes ~jobs)

let () =
  if Sys.getenv_opt "GOLDEN_PRINT" <> None then begin
    List.iter
      (fun (name, v) -> Printf.printf "    (%S, %.17g);\n" name v)
      (mres ~jobs:1);
    List.iter
      (fun jobs ->
        Printf.printf "  scan jobs=%d:\n" jobs;
        List.iter
          (fun (name, h) -> Printf.printf "    (%S, 0x%016LxL);\n" name h)
          (scan_hashes ~jobs))
      [ 1; 2 ];
    exit 0
  end;
  Alcotest.run "golden"
    [
      ( "europe",
        [
          Alcotest.test_case "jobs=1" `Quick (check_against ~jobs:1);
          Alcotest.test_case "jobs=2" `Quick (check_against ~jobs:2);
          Alcotest.test_case "jobs=4" `Quick (check_against ~jobs:4);
          Alcotest.test_case "bit-identical across jobs" `Quick bit_identity;
        ] );
      ( "sparse-vs-dense",
        [
          Alcotest.test_case "jobs=1" `Quick (sparse_vs_dense ~jobs:1);
          Alcotest.test_case "jobs=2" `Quick (sparse_vs_dense ~jobs:2);
          Alcotest.test_case "jobs=4" `Quick (sparse_vs_dense ~jobs:4);
        ] );
      ( "scan",
        [
          Alcotest.test_case "jobs=1" `Quick (check_scan ~jobs:1);
          Alcotest.test_case "jobs=2" `Quick (check_scan ~jobs:2);
          Alcotest.test_case "windows source matches busy" `Quick
            windows_matches_busy;
        ] );
    ]
