(* Golden regression: per-method MRE on the seeded full-scale Europe
   problem, pinned to 1e-9.  The same constants must hold at pool sizes
   1, 2 and 4 — the solver stack promises bit-identical results at
   every job count, so any drift here is either a numerical regression
   or a broken determinism invariant.  The bit-identity case asserts
   the stronger form directly: Int64-identical estimates on the
   reference busy window across all three job counts.

   Regenerate after an intentional numerical change with:
     GOLDEN_PRINT=1 dune exec test/test_golden.exe *)

module Mat = Tmest_linalg.Mat
module Core = Tmest_core
module Pool = Tmest_parallel.Pool
module Dataset = Tmest_traffic.Dataset
module Spec = Tmest_traffic.Spec

let goldens =
  [
    ("gravity", 0.27738950303982757);
    ("kruithof", 0.18748744357310587);
    ("entropy", 0.078707193965058);
    ("bayes", 0.16582487109346156);
    ("wcb", 0.26419235520861623);
    ("fanout", 0.3537328906472631);
    ("vardi", 0.9503596697622243);
    ("cao", 0.65832782533456269);
  ]

let solve_all ~jobs =
  let d = Dataset.europe () in
  let pool = Pool.create ~jobs in
  let ws = Core.Workspace.create ~pool d.Dataset.routing in
  let spec = d.Dataset.spec in
  let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let truth = Dataset.demand_at d k in
  let busy_truth = Dataset.busy_mean_demand d in
  let loads = Dataset.link_loads_at d k in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let window = 10 in
  let ks = Array.sub ks (Array.length ks - window) window in
  let samples =
    Mat.init window (Dataset.num_links d) (fun i j ->
        (Dataset.link_loads_at d ks.(i)).(j))
  in
  List.map
    (fun name ->
      let m = Core.Estimator.of_name name in
      let estimate = Core.Estimator.solve m ws ~loads ~load_samples:samples in
      let reference =
        if Core.Estimator.uses_time_series m then busy_truth else truth
      in
      (name, estimate, reference))
    (Core.Estimator.all_names ())

let mres ~jobs =
  List.map
    (fun (name, estimate, reference) ->
      (name, Core.Metrics.mre ~truth:reference ~estimate ()))
    (solve_all ~jobs)

(* The determinism contract asserted at the bit level: every method's
   estimate on the reference busy window is Int64-identical at jobs 1,
   2 and 4.  Stronger than the 1e-9 MRE pins above, which would let a
   reordered parallel reduction slip through as long as it stayed
   small. *)
let bit_identity () =
  let base = solve_all ~jobs:1 in
  List.iter
    (fun jobs ->
      List.iter2
        (fun (name, e1, _) (name', ej, _) ->
          Alcotest.(check string) "method order" name name';
          Array.iteri
            (fun i x ->
              if Int64.bits_of_float x <> Int64.bits_of_float ej.(i) then
                Alcotest.failf
                  "%s: pair %d differs between jobs=1 and jobs=%d (%h vs %h)"
                  name i jobs x ej.(i))
            e1)
        base (solve_all ~jobs))
    [ 2; 4 ]

let check_against ~jobs () =
  List.iter2
    (fun (name, expected) (name', got) ->
      Alcotest.(check string) "method order" name name';
      Alcotest.(check (float 1e-9)) name expected got)
    goldens (mres ~jobs)

(* Sparse-vs-dense identity: Europe sits far below the sparse gate, so
   forcing sparse mode runs every matrix-free branch (operator normal
   equations, Z-factor gram-square, power-iteration Lipschitz) on a
   problem where the dense fast path provides the reference.  Every
   dual-path method must land on the same MRE to 1e-9; the LP-based
   bounds are a documented dense-only exclusion and must refuse. *)
let sparse_vs_dense ~jobs () =
  let d = Dataset.europe () in
  let pool = Pool.create ~jobs in
  let spec = d.Dataset.spec in
  let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
  let truth = Dataset.demand_at d k in
  let busy_truth = Dataset.busy_mean_demand d in
  let loads = Dataset.link_loads_at d k in
  let ks = Array.of_list (Dataset.busy_samples d) in
  let window = 10 in
  let ks = Array.sub ks (Array.length ks - window) window in
  let samples =
    Mat.init window (Dataset.num_links d) (fun i j ->
        (Dataset.link_loads_at d ks.(i)).(j))
  in
  let dense = Core.Workspace.create ~pool d.Dataset.routing in
  let sparse =
    Core.Workspace.create ~pool ~mode:Core.Workspace.Sparse d.Dataset.routing
  in
  Alcotest.(check bool) "mode forced" true (Core.Workspace.is_sparse sparse);
  (* Precond_auto resolves differently per mode (Jacobi when sparse,
     none when dense), which would make this comparison test two
     different iterations paths; pin preconditioning off so the two
     modes run the same algorithm.  The preconditioned sparse path gets
     its own goldens in test_precond.ml. *)
  let opts =
    Core.Estimator.Options.make ~precond:Core.Workspace.Precond_none ()
  in
  List.iter
    (fun name ->
      let m = Core.Estimator.of_name name in
      let reference =
        if Core.Estimator.uses_time_series m then busy_truth else truth
      in
      let mre ws =
        let estimate =
          Core.Estimator.solve ~opts m ws ~loads ~load_samples:samples
        in
        Core.Metrics.mre ~truth:reference ~estimate ()
      in
      if name = "wcb" then
        match mre sparse with
        | _ -> Alcotest.failf "wcb must refuse on a sparse-mode workspace"
        | exception Invalid_argument _ -> ()
      else Alcotest.(check (float 1e-9)) name (mre dense) (mre sparse))
    (Core.Estimator.all_names ())

let () =
  if Sys.getenv_opt "GOLDEN_PRINT" <> None then begin
    List.iter
      (fun (name, v) -> Printf.printf "    (%S, %.17g);\n" name v)
      (mres ~jobs:1);
    exit 0
  end;
  Alcotest.run "golden"
    [
      ( "europe",
        [
          Alcotest.test_case "jobs=1" `Quick (check_against ~jobs:1);
          Alcotest.test_case "jobs=2" `Quick (check_against ~jobs:2);
          Alcotest.test_case "jobs=4" `Quick (check_against ~jobs:4);
          Alcotest.test_case "bit-identical across jobs" `Quick bit_identity;
        ] );
      ( "sparse-vs-dense",
        [
          Alcotest.test_case "jobs=1" `Quick (sparse_vs_dense ~jobs:1);
          Alcotest.test_case "jobs=2" `Quick (sparse_vs_dense ~jobs:2);
          Alcotest.test_case "jobs=4" `Quick (sparse_vs_dense ~jobs:4);
        ] );
    ]
