(* Cross-library integration properties: every check runs the full
   pipeline (generator -> routing -> estimator) on datasets drawn from
   random seeds, so invariants hold over the input distribution and not
   just the default fixtures. *)

open Tmest_linalg
open Tmest_net
open Tmest_traffic
open Tmest_core

let dataset_of_seed seed =
  Dataset.generate
    {
      (Spec.scaled ~nodes:6 ~directed_links:28 Spec.europe) with
      Spec.seed;
      samples = 40;
    }

let snapshot d =
  let k = d.Dataset.spec.Spec.busy_start + 5 in
  (Dataset.demand_at d k, Dataset.link_loads_at d k)

let seed_arb = QCheck.int_range 1 10_000

let prop name count f = QCheck.Test.make ~name ~count seed_arb f

(* 1. The evaluation data set is consistent by construction. *)
let prop_loads_consistent =
  prop "t = R s for generated datasets" 8 (fun seed ->
      let d = dataset_of_seed seed in
      let truth, loads = snapshot d in
      let recomputed = Routing.link_loads d.Dataset.routing truth in
      Vec.equal ~eps:1. recomputed loads)

(* 2. Gravity preserves the measured total and never goes negative. *)
let prop_gravity_total =
  prop "gravity conserves total traffic" 8 (fun seed ->
      let d = dataset_of_seed seed in
      let truth, loads = snapshot d in
      let est = Gravity.simple d.Dataset.routing ~loads in
      Array.for_all (fun x -> x >= 0.) est
      && abs_float (Vec.sum est -. Vec.sum truth)
         <= 1e-6 *. (1. +. Vec.sum truth))

(* 3. Worst-case bounds always contain the true demands. *)
let prop_wcb_contains =
  prop "WCB bounds contain the truth" 5 (fun seed ->
      let d = dataset_of_seed seed in
      let truth, loads = snapshot d in
      let b = Wcb.bounds (Tmest_core.Workspace.create d.Dataset.routing) ~loads in
      Wcb.contains b truth)

(* 4. At large sigma2 the entropy estimate is load-consistent and never
   worse than its prior on the measurement residual. *)
let prop_entropy_consistency =
  prop "entropy fits the loads at large sigma2" 6 (fun seed ->
      let d = dataset_of_seed seed in
      let _, loads = snapshot d in
      let prior = Gravity.simple d.Dataset.routing ~loads in
      let est =
        (Entropy.estimate ~stop:(Tmest_opt.Stop.make ~max_iter:6000 ())
           (Tmest_core.Workspace.create d.Dataset.routing) ~loads ~prior
           ~sigma2:1e4)
          .Entropy.estimate
      in
      let res = Problem.residual_norm d.Dataset.routing ~loads est in
      let res_prior = Problem.residual_norm d.Dataset.routing ~loads prior in
      res < 0.05 && res <= res_prior +. 1e-12)

(* 5. Regularized estimates interpolate: more regularization never takes
   the estimate further from the prior (in relative L1). *)
let prop_bayes_interpolates =
  prop "bayes distance to prior grows with sigma2" 5 (fun seed ->
      let d = dataset_of_seed seed in
      let _, loads = snapshot d in
      let prior = Gravity.simple d.Dataset.routing ~loads in
      let dist sigma2 =
        let est =
          (Bayes.estimate ~stop:(Tmest_opt.Stop.make ~max_iter:4000 ())
             (Tmest_core.Workspace.create d.Dataset.routing) ~loads ~prior
             ~sigma2)
            .Bayes.estimate
        in
        Metrics.relative_l1 ~truth:prior ~estimate:est
      in
      let d1 = dist 1e-3 and d2 = dist 1. and d3 = dist 1e3 in
      d1 <= d2 +. 1e-6 && d2 <= d3 +. 1e-6)

(* 6. The SNMP pipeline recovers the TM across seeds and loss levels. *)
let prop_snmp_recovery =
  prop "snmp pipeline error bounded" 5 (fun seed ->
      let d = dataset_of_seed seed in
      let config =
        {
          Tmest_snmp.Collect.default_config with
          Tmest_snmp.Collect.loss_prob = 0.02;
          seed;
        }
      in
      let truth k = Dataset.demand_at d k in
      let r =
        Tmest_snmp.Collect.run config ~true_rates:truth
          ~samples:(Dataset.num_samples d) ~pairs:(Dataset.num_pairs d)
      in
      Tmest_snmp.Collect.mean_absolute_rate_error r ~true_rates:truth < 0.06)

(* 7. Fanout estimation always returns per-source distributions. *)
let prop_fanout_stochastic =
  prop "fanout rows are distributions" 5 (fun seed ->
      let d = dataset_of_seed seed in
      let ks = Array.of_list (Dataset.busy_samples d) in
      let window = 5 in
      let ks = Array.sub ks (Array.length ks - window) window in
      let loads =
        Mat.init window (Dataset.num_links d) (fun i j ->
            (Dataset.link_loads_at d ks.(i)).(j))
      in
      let r =
        Fanout.estimate
          (Tmest_core.Workspace.create d.Dataset.routing)
          ~load_samples:loads
      in
      let n = Dataset.num_nodes d in
      let ok = ref true in
      for src = 0 to n - 1 do
        let total = ref 0. in
        Odpairs.iter ~nodes:n (fun p s _ ->
            if s = src then begin
              if r.Fanout.fanouts.(p) < -1e-9 then ok := false;
              total := !total +. r.Fanout.fanouts.(p)
            end);
        if abs_float (!total -. 1.) > 1e-6 then ok := false
      done;
      !ok)

(* 8. Estimates survive a save/load round-trip of the dataset. *)
let prop_io_roundtrip_estimation =
  prop "io round-trip preserves the estimation problem" 4 (fun seed ->
      let d = dataset_of_seed seed in
      let truth, _ = snapshot d in
      let nodes = Dataset.num_nodes d in
      let topo' =
        Tmest_io.Topology_io.of_string ~name:"mem"
          (Tmest_io.Topology_io.to_string d.Dataset.topo)
      in
      let routing = Routing.shortest_path topo' in
      let routing0 = Routing.shortest_path d.Dataset.topo in
      ignore nodes;
      (* Same topology -> identical routing matrices. *)
      Mat.equal ~eps:1e-12 (Routing.dense routing) (Routing.dense routing0)
      && Vec.equal ~eps:1.
           (Routing.link_loads routing truth)
           (Routing.link_loads routing0 truth))

let () =
  Alcotest.run "integration"
    [
      ( "pipeline-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_loads_consistent;
            prop_gravity_total;
            prop_wcb_contains;
            prop_entropy_consistency;
            prop_bayes_interpolates;
            prop_snmp_recovery;
            prop_fanout_stochastic;
            prop_io_roundtrip_estimation;
          ] );
    ]
