(* Benchmark harness.

   Default mode regenerates every table and figure of the paper's
   evaluation section on the full-scale synthetic datasets and prints
   them as reports (series, tables, notes) — the artifact recorded in
   EXPERIMENTS.md.

   [--perf] instead runs Bechamel micro/meso benchmarks: one Test.make
   per paper table/figure (the full experiment pipeline on the reduced
   context, so each run is sub-second) plus the numerical kernels the
   estimators are built on, and writes BENCH_workspace.json with
   cold-vs-warm solver-workspace timings (gram, Cholesky factor, one
   full entropy solve, one full Cao solve).

   Other flags: [--fast] (reduced datasets for the report mode),
   [--only fig13,tab2], [--list]. *)

module Registry = Tmest_experiments.Registry
module Report = Tmest_experiments.Report
module Ctx = Tmest_experiments.Ctx

let run_reports ~fast ~only () =
  let t_start = Unix.gettimeofday () in
  Printf.printf
    "Traffic matrix estimation on a large IP backbone — experiment \
     harness\n";
  Printf.printf "mode: %s datasets\n\n%!"
    (if fast then "reduced (--fast)" else "paper-scale");
  let ctx = Ctx.create ~fast () in
  let selected =
    match only with
    | None -> Registry.all
    | Some ids ->
        List.map
          (fun id ->
            try Registry.find id
            with Not_found ->
              Printf.eprintf "unknown experiment id %S; known: %s\n" id
                (String.concat " " (Registry.ids ()));
              exit 2)
          ids
  in
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      let report = e.Registry.run ctx in
      Report.print report;
      Printf.printf "  (%s completed in %.1fs)\n\n%!" e.Registry.id
        (Unix.gettimeofday () -. t0))
    selected;
  List.iter
    (fun net ->
      Format.printf "workspace[%s]: %a@." net.Ctx.label
        Tmest_core.Workspace.pp_stats
        (Tmest_core.Workspace.stats net.Ctx.workspace))
    (Ctx.networks ctx);
  Printf.printf "all experiments done in %.1fs\n%!"
    (Unix.gettimeofday () -. t_start)

(* ------------------------------------------------------------------ *)
(* Workspace cold-vs-warm timings (BENCH_workspace.json)               *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled ns/op: repeat the thunk until ~0.2s of wall-clock has
   accumulated (at least 3 runs) and report the mean.  Bechamel's OLS
   machinery is overkill here — these are one-shot artifact timings
   whose point is the cold/warm ratio, not nanosecond precision. *)
let time_ns f =
  ignore (f ());
  let budget = 0.2 in
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  while Unix.gettimeofday () -. t0 < budget || !reps < 3 do
    ignore (f ());
    incr reps
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int !reps *. 1e9

let workspace_json () =
  let module Core = Tmest_core in
  let module Dataset = Tmest_traffic.Dataset in
  let module Mat = Tmest_linalg.Mat in
  let eu = Dataset.europe () in
  let routing = eu.Dataset.routing in
  let spec = eu.Dataset.spec in
  let k = spec.Tmest_traffic.Spec.busy_start + (spec.Tmest_traffic.Spec.busy_len / 2) in
  let loads = Dataset.link_loads_at eu k in
  let ks = Array.of_list (Dataset.busy_samples eu) in
  let window = 20 in
  let ks = Array.sub ks (Array.length ks - window) window in
  let load_samples =
    Mat.init window (Dataset.num_links eu) (fun i j ->
        (Dataset.link_loads_at eu ks.(i)).(j))
  in
  let entropy = Core.Estimator.of_name "entropy" in
  let cao = Core.Estimator.of_name "cao" in
  let warm = Core.Workspace.create routing in
  (* Populate every artifact the warm path uses before timing it. *)
  ignore (Core.Estimator.run_ws entropy warm ~loads ~load_samples);
  ignore (Core.Estimator.run_ws cao warm ~loads ~load_samples);
  let rows =
    [
      ( "gram_cold",
        time_ns (fun () ->
            Core.Workspace.gram (Core.Workspace.create routing)) );
      ("gram_warm", time_ns (fun () -> Core.Workspace.gram warm));
      ( "factor_cold",
        let g = Core.Workspace.gram warm in
        time_ns (fun () -> Tmest_linalg.Chol.factor_regularized g) );
      ("factor_warm", time_ns (fun () -> Core.Workspace.gram_chol warm));
      ( "entropy_solve_cold",
        time_ns (fun () ->
            Core.Estimator.run entropy routing ~loads ~load_samples) );
      ( "entropy_solve_warm",
        time_ns (fun () ->
            Core.Estimator.run_ws entropy warm ~loads ~load_samples) );
      ( "cao_solve_cold",
        time_ns (fun () ->
            Core.Estimator.run cao routing ~loads ~load_samples) );
      ( "cao_solve_warm",
        time_ns (fun () ->
            Core.Estimator.run_ws cao warm ~loads ~load_samples) );
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"network\": \"europe\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"window\": %d,\n  \"unit\": \"ns/op\",\n" window);
  Buffer.add_string buf "  \"benchmarks\": {\n";
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %.0f%s\n" name ns
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  }\n}\n";
  let path = "BENCH_workspace.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  List.iter (fun (name, ns) -> Printf.printf "%-20s %12.0f ns/op\n" name ns) rows

(* ------------------------------------------------------------------ *)
(* Bechamel performance suite                                          *)
(* ------------------------------------------------------------------ *)

let kernel_tests () =
  let open Bechamel in
  let module Mat = Tmest_linalg.Mat in
  let module Vec = Tmest_linalg.Vec in
  let module Csr = Tmest_linalg.Csr in
  let rng = Tmest_stats.Rng.create 11 in
  let mat n m = Mat.init n m (fun _ _ -> Tmest_stats.Rng.float rng) in
  let a200 = mat 200 200 in
  let b200 = mat 200 200 in
  let v200 = Array.init 200 (fun _ -> Tmest_stats.Rng.float rng) in
  let spd = Mat.add (Mat.gram (mat 120 120)) (Mat.identity 120) in
  let rhs = Array.init 120 (fun _ -> Tmest_stats.Rng.float rng) in
  let eu = Tmest_traffic.Dataset.europe () in
  let r_eu = eu.Tmest_traffic.Dataset.routing in
  let demand =
    Tmest_traffic.Dataset.demand_at eu 229
  in
  [
    Test.make ~name:"mat200.matmul" (Staged.stage (fun () ->
        Mat.matmul a200 b200));
    Test.make ~name:"mat200.matvec" (Staged.stage (fun () ->
        Mat.matvec a200 v200));
    Test.make ~name:"chol120.factor+solve" (Staged.stage (fun () ->
        Tmest_linalg.Chol.solve_system spd rhs));
    Test.make ~name:"lu120.factor+solve" (Staged.stage (fun () ->
        Tmest_linalg.Lu.solve_system spd rhs));
    Test.make ~name:"csr.europe.link_loads" (Staged.stage (fun () ->
        Tmest_net.Routing.link_loads r_eu demand));
    Test.make ~name:"lambert.w0" (Staged.stage (fun () ->
        Tmest_stats.Lambert.w0 12.3));
  ]

let experiment_tests () =
  let open Bechamel in
  (* One Test.make per paper table/figure: the full pipeline on the
     reduced context so a single run stays sub-second. *)
  let ctx = Ctx.create ~fast:true () in
  List.map
    (fun e ->
      Test.make ~name:("exp." ^ e.Registry.id)
        (Staged.stage (fun () -> ignore (e.Registry.run ctx))))
    Registry.all

let run_perf () =
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"tmest" ~fmt:"%s.%s"
      (kernel_tests () @ experiment_tests ())
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-32s %14s\n" "benchmark" "time/run";
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (ns :: _) ->
          let pretty =
            if ns > 1e9 then Printf.sprintf "%8.2f  s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
            else Printf.sprintf "%8.0f ns" ns
          in
          Printf.printf "%-32s %14s\n" name pretty
      | _ -> Printf.printf "%-32s %14s\n" name "n/a")
    rows

let () =
  let fast = ref false in
  let perf = ref false in
  let only = ref None in
  let list = ref false in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
        fast := true;
        parse rest
    | "--perf" :: rest ->
        perf := true;
        parse rest
    | "--list" :: rest ->
        list := true;
        parse rest
    | "--only" :: ids :: rest ->
        only := Some (String.split_on_char ',' ids);
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: main.exe [--fast] [--perf] [--list] [--only id,id,...]\n\
           unknown argument: %s\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list then
    List.iter
      (fun e -> Printf.printf "%-6s %s\n" e.Registry.id e.Registry.title)
      Registry.all
  else if !perf then begin
    workspace_json ();
    run_perf ()
  end
  else run_reports ~fast:!fast ~only:!only ()
