(* Benchmark harness.

   Default mode regenerates every table and figure of the paper's
   evaluation section on the full-scale synthetic datasets and prints
   them as reports (series, tables, notes) — the artifact recorded in
   EXPERIMENTS.md.

   [--perf] instead runs Bechamel micro/meso benchmarks: one Test.make
   per paper table/figure (the full experiment pipeline on the reduced
   context, so each run is sub-second) plus the numerical kernels and
   allocation-free solver cores the estimators are built on, reporting
   both time/run and minor words/run.  It also writes
   BENCH_workspace.json (cold-vs-warm solver-workspace timings),
   BENCH_solvers.json (per-iteration solver allocations, full-method
   timings with the warm-start cache, and the cold-vs-warm window-scan
   meso-benchmark) and BENCH_parallel.json (the multicore fan-out sweep
   over jobs in {1, 2, 4, #cores}).  [--perf --fast] is the CI smoke
   variant: kernels and solvers only, reduced context and quota.

   [--scale] runs the scaling-law sweep over synthetic hierarchical
   backbones (PoPs x method, both sides of the workspace sparse gate)
   and writes BENCH_scale.json; [--scale --fast] uses smaller sizes for
   CI.  The sweep asserts that sparse-mode solves keep the GC heap
   watermark below pairs^2/2 words — the witness that no dense Gram or
   routing matrix was ever materialized.

   [--throughput] replays a full measurement day (288 five-minute
   windows) at 25 and 100 PoPs over jobs in {1, 2, 4, 8} and writes
   windows/sec to BENCH_throughput.json; [--throughput --fast] is the
   CI smoke variant (smaller networks, 24 windows, same jobs sweep).
   Speedup floors are asserted only on boxes with >= 2 cores.

   Other flags: [--fast] (reduced datasets for the report mode),
   [--jobs N] (domain-pool size; default TMEST_JOBS, then the
   recommended domain count), [--only fig13,tab2], [--list]. *)

module Registry = Tmest_experiments.Registry
module Report = Tmest_experiments.Report
module Ctx = Tmest_experiments.Ctx
module Pool = Tmest_parallel.Pool

let run_reports ~fast ~only () =
  let t_start = Unix.gettimeofday () in
  Printf.printf
    "Traffic matrix estimation on a large IP backbone — experiment \
     harness\n";
  Printf.printf "mode: %s datasets\n\n%!"
    (if fast then "reduced (--fast)" else "paper-scale");
  let ctx = Ctx.create ~fast () in
  let selected =
    match only with
    | None -> Registry.all
    | Some ids ->
        List.map
          (fun id ->
            try Registry.find id
            with Not_found ->
              Printf.eprintf "unknown experiment id %S; known: %s\n" id
                (String.concat " " (Registry.ids ()));
              exit 2)
          ids
  in
  (* Experiments fan out over the context's pool (sequential at
     jobs = 1); reports print in registry order afterwards, so the
     output is identical at every job count up to the timing lines. *)
  let results =
    Pool.map (Ctx.pool ctx)
      (fun e ->
        let t0 = Unix.gettimeofday () in
        let report = e.Registry.run ctx in
        (e, report, Unix.gettimeofday () -. t0))
      (Array.of_list selected)
  in
  Array.iter
    (fun (e, report, dt) ->
      Report.print report;
      Printf.printf "  (%s completed in %.1fs)\n\n%!" e.Registry.id dt)
    results;
  List.iter
    (fun net ->
      Format.printf "workspace[%s]: %a@." net.Ctx.label
        Tmest_core.Workspace.pp_stats
        (Tmest_core.Workspace.stats net.Ctx.workspace))
    (Ctx.networks ctx);
  Printf.printf "all experiments done in %.1fs\n%!"
    (Unix.gettimeofday () -. t_start)

(* ------------------------------------------------------------------ *)
(* Workspace cold-vs-warm timings (BENCH_workspace.json)               *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled ns/op: repeat the thunk until ~0.2s of wall-clock has
   accumulated (at least 3 runs) and report the mean.  Bechamel's OLS
   machinery is overkill here — these are one-shot artifact timings
   whose point is the cold/warm ratio, not nanosecond precision. *)
(* Machine/run provenance stamped into every BENCH_*.json, so recorded
   numbers can be compared across checkouts: the core count the
   benchmark treats as available, the runtime's own recommendation
   (identical here, but kept as a separate key because downstream
   tooling reads both and containerized runners can diverge), the pool
   size the benchmark actually used, and the compiler version. *)
let provenance ~jobs =
  let cores = Domain.recommended_domain_count () in
  Printf.sprintf
    "  \"cores\": %d,\n  \"cores_recommended\": %d,\n  \"jobs\": %d,\n\
    \  \"ocaml_version\": %S,\n"
    cores cores jobs Sys.ocaml_version

let time_ns f =
  ignore (f ());
  let budget = 0.2 in
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  while Unix.gettimeofday () -. t0 < budget || !reps < 3 do
    ignore (f ());
    incr reps
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int !reps *. 1e9

let workspace_json () =
  let module Core = Tmest_core in
  let module Dataset = Tmest_traffic.Dataset in
  let module Mat = Tmest_linalg.Mat in
  let eu = Dataset.europe () in
  let routing = eu.Dataset.routing in
  let spec = eu.Dataset.spec in
  let k = spec.Tmest_traffic.Spec.busy_start + (spec.Tmest_traffic.Spec.busy_len / 2) in
  let loads = Dataset.link_loads_at eu k in
  let ks = Array.of_list (Dataset.busy_samples eu) in
  let window = 20 in
  let ks = Array.sub ks (Array.length ks - window) window in
  let load_samples =
    Mat.init window (Dataset.num_links eu) (fun i j ->
        (Dataset.link_loads_at eu ks.(i)).(j))
  in
  let entropy = Core.Estimator.of_name "entropy" in
  let cao = Core.Estimator.of_name "cao" in
  let warm = Core.Workspace.create routing in
  (* The "cold" rows rebuild the workspace inside the thunk, so they
     price a from-scratch routing context against the cached one. *)
  let solve_cold est () =
    Core.Estimator.solve est
      (Core.Workspace.create routing)
      ~loads ~load_samples
  in
  (* Populate every artifact the warm path uses before timing it. *)
  ignore (Core.Estimator.solve entropy warm ~loads ~load_samples);
  ignore (Core.Estimator.solve cao warm ~loads ~load_samples);
  let rows =
    [
      ( "gram_cold",
        time_ns (fun () ->
            Core.Workspace.gram (Core.Workspace.create routing)) );
      ("gram_warm", time_ns (fun () -> Core.Workspace.gram warm));
      ( "factor_cold",
        let g = Core.Workspace.gram warm in
        time_ns (fun () -> Tmest_linalg.Chol.factor_regularized g) );
      ("factor_warm", time_ns (fun () -> Core.Workspace.gram_chol warm));
      ("entropy_solve_cold", time_ns (solve_cold entropy));
      ( "entropy_solve_warm",
        time_ns (fun () ->
            Core.Estimator.solve entropy warm ~loads ~load_samples) );
      ("cao_solve_cold", time_ns (solve_cold cao));
      ( "cao_solve_warm",
        time_ns (fun () ->
            Core.Estimator.solve cao warm ~loads ~load_samples) );
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"network\": \"europe\",\n";
  Buffer.add_string buf (provenance ~jobs:1);
  Buffer.add_string buf
    (Printf.sprintf "  \"window\": %d,\n  \"unit\": \"ns/op\",\n" window);
  Buffer.add_string buf "  \"benchmarks\": {\n";
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %.0f%s\n" name ns
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  }\n}\n";
  let path = "BENCH_workspace.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  List.iter (fun (name, ns) -> Printf.printf "%-20s %12.0f ns/op\n" name ns) rows

(* ------------------------------------------------------------------ *)
(* Solver hot-path allocations and warm-started scans                  *)
(* (BENCH_solvers.json)                                                *)
(* ------------------------------------------------------------------ *)

(* Minor-heap words allocated per call, measured directly with the GC
   counters (deterministic, unlike timings). *)
let minor_words_per f =
  ignore (f ());
  let reps = 8 in
  let before = Gc.minor_words () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Gc.minor_words () -. before) /. float_of_int reps

(* Marginal allocation of one extra solver iteration: difference between
   a 1-iteration and a (1+n)-iteration solve.  The setup cost (scratch
   validation, result copy) cancels out. *)
let words_per_iter solve =
  let extra = 64 in
  let base = minor_words_per (fun () -> solve 1) in
  let long = minor_words_per (fun () -> solve (1 + extra)) in
  (long -. base) /. float_of_int extra

let solvers_json ~fast () =
  let module Core = Tmest_core in
  let module Vec = Tmest_linalg.Vec in
  let module Mat = Tmest_linalg.Mat in
  let module Fista = Tmest_opt.Fista in
  let module Proxgrad = Tmest_opt.Proxgrad in
  let module Cg = Tmest_opt.Cg in
  (* Exactly n iterations: tolerance 0 never triggers early exit. *)
  let stop_exact n = Tmest_opt.Stop.make ~max_iter:n ~tol:0. () in
  (* Per-iteration allocations of the solver cores, on a synthetic SPD
     quadratic so the numbers are routing-independent. *)
  let rng = Tmest_stats.Rng.create 23 in
  let dim = 200 in
  let a =
    Mat.add
      (Mat.gram (Mat.init dim dim (fun _ _ -> Tmest_stats.Rng.float rng)))
      (Mat.identity dim)
  in
  let b = Array.init dim (fun _ -> Tmest_stats.Rng.float rng) in
  let lip = Fista.lipschitz_of_gram a in
  let gradient_into x ~dst =
    Mat.matvec_into a x ~dst;
    Vec.sub_into dst b ~dst
  in
  let fista_scratch = Array.init Fista.scratch_size (fun _ -> Vec.zeros dim) in
  let pg_scratch = Array.init Proxgrad.scratch_size (fun _ -> Vec.zeros dim) in
  let cg_scratch = Array.init Cg.scratch_size (fun _ -> Vec.zeros dim) in
  let prior = Vec.ones dim in
  let alloc_rows =
    [
      ( "fista",
        words_per_iter (fun n ->
            Fista.solve_into ~stop:(stop_exact n) ~scratch:fista_scratch ~dim
              ~gradient_into ~lipschitz:lip ()) );
      ( "proxgrad",
        words_per_iter (fun n ->
            Proxgrad.solve_into ~stop:(stop_exact n) ~scratch:pg_scratch ~dim
              ~gradient_into
              ~prox_into:(Proxgrad.kl_prox_into ~weight:0.1 ~prior)
              ~lipschitz:lip ()) );
      ( "cg",
        words_per_iter (fun n ->
            Cg.solve_into ~stop:(stop_exact n) ~scratch:cg_scratch
              ~apply_into:(fun v ~dst -> Mat.matvec_into a v ~dst)
              ~b ()) );
    ]
  in
  (* Full-method timings plus the cold-vs-warm window-scan comparison on
     the shared experiment context. *)
  let ctx = Ctx.create ~fast () in
  let net = ctx.Ctx.europe in
  let ws = net.Ctx.workspace in
  let loads = net.Ctx.loads in
  let window = if fast then 5 else 20 in
  let steps = if fast then 3 else 5 in
  let load_samples = Ctx.Scan.samples net ~window in
  let routing = net.Ctx.dataset.Tmest_traffic.Dataset.routing in
  let entropy = Core.Estimator.of_name "entropy" in
  let cao = Core.Estimator.of_name "cao" in
  let warm_opts = Core.Estimator.Options.make ~warm:true () in
  let solve_cold est () =
    Core.Estimator.solve est
      (Core.Workspace.create routing)
      ~loads ~load_samples
  in
  (* Populate workspace artifacts and the warm-start cache. *)
  ignore (Core.Estimator.solve ~opts:warm_opts entropy ws ~loads ~load_samples);
  ignore (Core.Estimator.solve ~opts:warm_opts cao ws ~loads ~load_samples);
  let ns_rows =
    [
      ("entropy_solve_cold", time_ns (solve_cold entropy));
      ( "entropy_solve_warm",
        time_ns (fun () ->
            Core.Estimator.solve ~opts:warm_opts entropy ws ~loads
              ~load_samples) );
      ("cao_solve_cold", time_ns (solve_cold cao));
      ( "cao_solve_warm",
        time_ns (fun () ->
            Core.Estimator.solve ~opts:warm_opts cao ws ~loads ~load_samples)
      );
      (* Scan with the Cao estimator: its warm start reuses the previous
         window's lambda and skips the first-moment bootstrap entirely,
         so the cold/warm gap is the meso-level payoff of the cache.
         (Entropy re-derives a near-optimal start from the gravity prior
         of each window's own loads, so warm-starting barely moves its
         iteration count.) *)
      ( "windows_scan_cold",
        time_ns (fun () ->
            Ctx.Scan.run net cao (Ctx.Scan.make (Ctx.Scan.Busy { window; steps }))) );
      ( "windows_scan_warm",
        time_ns (fun () ->
            Ctx.Scan.run net cao
              (Ctx.Scan.make ~opts:warm_opts (Ctx.Scan.Busy { window; steps }))) );
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"network\": %S,\n" (if fast then "europe-fast" else "europe"));
  Buffer.add_string buf (provenance ~jobs:(Pool.size (Ctx.pool ctx)));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"window\": %d,\n  \"scan_steps\": %d,\n  \"scan_method\": \"cao\",\n"
       window steps);
  Buffer.add_string buf "  \"alloc_minor_words_per_iter\": {\n";
  List.iteri
    (fun i (name, words) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %.1f%s\n" name words
           (if i = List.length alloc_rows - 1 then "" else ",")))
    alloc_rows;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"ns_per_op\": {\n";
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %.0f%s\n" name ns
           (if i = List.length ns_rows - 1 then "" else ",")))
    ns_rows;
  Buffer.add_string buf "  }\n}\n";
  let path = "BENCH_solvers.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  List.iter
    (fun (name, words) ->
      Printf.printf "%-20s %12.1f minor words/iter\n" name words)
    alloc_rows;
  List.iter
    (fun (name, ns) -> Printf.printf "%-20s %12.0f ns/op\n" name ns)
    ns_rows

(* ------------------------------------------------------------------ *)
(* Multicore fan-out sweep (BENCH_parallel.json)                       *)
(* ------------------------------------------------------------------ *)

(* Wall-clock of the three parallelized fan-out layers at several pool
   sizes: the cold Europe window scan (one task per window position),
   the America per-method sweep (one task per estimation method) and
   the America-scale dense Gram matvec (row-partitioned kernel).  One
   context is built up front and its workspaces swap pools between
   sweeps, so every job count times the same cached artifacts; that
   the *results* are independent of the job count is asserted in
   test_parallel, this file only records the speedups. *)
let parallel_json ~fast () =
  let module Core = Tmest_core in
  let module Workspace = Tmest_core.Workspace in
  let module Mat = Tmest_linalg.Mat in
  let module Vec = Tmest_linalg.Vec in
  let cores = Pool.default_jobs () in
  (* On a single-core box every jobs > 1 row measures scheduler churn,
     not parallel speedup; stamp the fact into the JSON so downstream
     consumers discard the speedup columns instead of reading noise. *)
  let oversubscribed = cores = 1 in
  if oversubscribed then
    Printf.eprintf
      "warning: only 1 core available — jobs > 1 rows are oversubscribed \
       and their speedups are not meaningful\n%!";
  let jobs_list = List.sort_uniq compare [ 1; 2; 4; cores ] in
  let window = if fast then 5 else 20 in
  let steps = if fast then 4 else 8 in
  let ctx = Ctx.create ~fast ~jobs:1 () in
  let eu = ctx.Ctx.europe in
  let us = ctx.Ctx.america in
  let cao = Core.Estimator.of_name "cao" in
  let methods =
    Array.of_list
      (List.map Core.Estimator.of_name (Core.Estimator.all_names ()))
  in
  let us_loads = us.Ctx.loads in
  let us_samples = Ctx.Scan.samples us ~window in
  let gram = Workspace.gram us.Ctx.workspace in
  let x = Vec.ones (Mat.cols gram) in
  let dst = Vec.zeros (Mat.rows gram) in
  let bench_at jobs =
    let pool = Pool.create ~jobs in
    List.iter
      (fun net -> Workspace.set_pool net.Ctx.workspace (Some pool))
      (Ctx.networks ctx);
    let scan =
      time_ns (fun () ->
          Ctx.Scan.run eu cao (Ctx.Scan.make (Ctx.Scan.Busy { window; steps })))
    in
    let sweep =
      time_ns (fun () ->
          ignore
            (Pool.map pool
               (fun est ->
                 Core.Estimator.solve est us.Ctx.workspace ~loads:us_loads
                   ~load_samples:us_samples)
               methods))
    in
    let matvec = time_ns (fun () -> Mat.matvec_into ~pool gram x ~dst) in
    Pool.shutdown pool;
    [
      ("europe_scan_cold", scan);
      ("america_method_sweep", sweep);
      ("america_gram_matvec", matvec);
    ]
  in
  let rows = List.map (fun jobs -> (jobs, bench_at jobs)) jobs_list in
  let base = List.assoc (List.hd jobs_list) rows in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (provenance ~jobs:(List.fold_left Stdlib.max 1 jobs_list));
  Buffer.add_string buf
    (Printf.sprintf "  \"oversubscribed\": %b,\n" oversubscribed);
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": %S,\n" (if fast then "fast" else "full"));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"window\": %d,\n  \"scan_steps\": %d,\n  \"scan_method\": \
        \"cao\",\n  \"unit\": \"ns/op\",\n"
       window steps);
  let section title value last =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {\n" title);
    List.iteri
      (fun i (jobs, v) ->
        Buffer.add_string buf
          (Printf.sprintf "    \"%d\": %s%s\n" jobs (value v)
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf (if last then "  }\n" else "  },\n")
  in
  let names = List.map fst base in
  List.iteri
    (fun i name ->
      section ("ns_" ^ name)
        (fun bench -> Printf.sprintf "%.0f" (List.assoc name bench))
        false;
      section ("speedup_" ^ name)
        (fun bench ->
          Printf.sprintf "%.2f" (List.assoc name base /. List.assoc name bench))
        (i = List.length names - 1))
    names;
  Buffer.add_string buf "}\n";
  let path = "BENCH_parallel.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  Printf.printf "%-24s" "benchmark \\ jobs";
  List.iter (fun jobs -> Printf.printf " %10d" jobs) jobs_list;
  print_newline ();
  List.iter
    (fun name ->
      Printf.printf "%-24s" name;
      List.iter
        (fun (_, bench) -> Printf.printf " %8.2fms" (List.assoc name bench /. 1e6))
        rows;
      Printf.printf "   (speedup at %d jobs: %.2fx)\n"
        (List.hd (List.rev jobs_list))
        (List.assoc name base
        /. List.assoc name (List.assoc (List.hd (List.rev jobs_list)) rows)))
    names

(* ------------------------------------------------------------------ *)
(* Scaling-law sweep over synthetic backbones (BENCH_scale.json)       *)
(* ------------------------------------------------------------------ *)

(* PoPs x method: wall seconds, MRE, per-solve allocation churn and the
   heap watermark, with sizes on both sides of the workspace sparse
   gate.  Sizes run in ascending order so each sparse size's watermark
   assertion (heap < pairs^2/2 words — the "no dense Gram was ever
   built" witness) is not contaminated by a larger earlier run.
   LP-based worst-case bounds are recorded as a documented exclusion
   above the gate rather than run. *)
let scale_json ~fast () =
  let module Core = Tmest_core in
  let module W = Tmest_core.Workspace in
  let module Dataset = Tmest_traffic.Dataset in
  let module Spec = Tmest_traffic.Spec in
  let module Mat = Tmest_linalg.Mat in
  let sizes = if fast then [ 12; 25; 60 ] else [ 25; 100; 250; 500 ] in
  let methods = Core.Estimator.all_names () in
  let window = 8 in
  let pool = Pool.default () in
  let failures = ref [] in
  (* Iteration-count regression guard: entropy and bayes at 100 PoPs
     (the tentpole size) must stay below pinned ceilings, so a solver
     change that quietly blows up the iteration count fails CI rather
     than just slowing the sweep.  Ceilings are the measured counts
     (entropy 3016, bayes at its 4000-iteration budget) plus margin. *)
  let guard_pops = 100 in
  (* tomogravity_iter and mcmc_int have deterministic budgets (the GIS
     outer cap and burn + samples*thin/chains sweeps): their ceilings
     are exact, and a drift means the budget arithmetic changed.
     cumulant's FISTA count is measured (1388 at 100 PoPs) plus
     margin, like entropy/bayes. *)
  let guard_ceilings =
    [
      ("entropy", 3400);
      ("bayes", 4000);
      ("tomogravity_iter", 200);
      ("cumulant", 1600);
      ("mcmc_int", 150);
    ]
  in
  let guard_results = ref [] in
  let rows =
    List.concat_map
      (fun pops ->
        let t0 = Unix.gettimeofday () in
        let d = Dataset.synthetic ~pops () in
        let ws = W.create ~pool d.Dataset.routing in
        let sparse = W.is_sparse ws in
        let pairs = Dataset.num_pairs d in
        let links = Dataset.num_links d in
        Printf.printf "# %d PoPs: %d pairs, %d links, %s mode (built in \
                       %.1fs)\n%!"
          pops pairs links
          (if sparse then "sparse" else "dense")
          (Unix.gettimeofday () -. t0);
        let spec = d.Dataset.spec in
        let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
        let loads = Dataset.link_loads_at d k in
        let truth = Dataset.demand_at d k in
        let busy_mean = Dataset.busy_mean_demand d in
        let ks = Array.of_list (Dataset.busy_samples d) in
        let ks = Array.sub ks (Array.length ks - window) window in
        let load_samples =
          Mat.init window links (fun i j -> (Dataset.link_loads_at d ks.(i)).(j))
        in
        let out =
          List.map
            (fun name ->
              if
                (* The shared capability predicate — same split the
                   registry, the CLI and the daemon consult. *)
                not
                  ((not sparse)
                  || Core.Estimator.supports_sparse
                       (Core.Estimator.of_name name))
              then begin
                Printf.printf "%4d %-8s excluded (dense-only)\n%!" pops name;
                (pops, pairs, links, sparse, name,
                 `Excluded
                   "LP-based worst-case bounds need a dense simplex \
                    tableau per demand; dense-only by design")
              end
              else begin
                let m = Core.Estimator.of_name name in
                W.reset_stats ws;
                let t0 = Unix.gettimeofday () in
                let estimate =
                  Core.Estimator.solve m ws ~loads ~load_samples
                in
                let seconds = Unix.gettimeofday () -. t0 in
                let st = W.stats ws in
                let iters = W.last_iterations ws ~name in
                let reference =
                  if Core.Estimator.uses_time_series m then busy_mean
                  else truth
                in
                let mre = Core.Metrics.mre ~truth:reference ~estimate () in
                Printf.printf
                  "%4d %-8s %8.2fs  mre %6.4f  iters %5s  churn %.2e w  \
                   heap %.2e w\n%!"
                  pops name seconds mre
                  (match iters with Some n -> string_of_int n | None -> "-")
                  st.W.peak_solve_words st.W.heap_words;
                (pops, pairs, links, sparse, name,
                 `Ok
                   (seconds, mre, st.W.peak_solve_words, st.W.heap_words,
                    iters))
              end)
            methods
        in
        (* The dense-matrix witness for this size. *)
        if sparse then begin
          let budget = float_of_int pairs *. float_of_int pairs /. 2. in
          List.iter
            (fun (_, _, _, _, name, r) ->
              match r with
              | `Ok (_, _, _, heap, _) when heap >= budget ->
                  failures :=
                    Printf.sprintf
                      "%d pops/%s: heap watermark %.2e words >= pairs^2/2 \
                       = %.2e"
                      pops name heap budget
                    :: !failures
              | _ -> ())
            out
        end;
        out)
      sizes
  in
  (* The iteration guard runs its own solves (the fast sizes do not
     include 100 PoPs) so CI and the full sweep apply the identical
     check. *)
  (let t0 = Unix.gettimeofday () in
   let d = Dataset.synthetic ~pops:guard_pops () in
   let ws = W.create ~pool d.Dataset.routing in
   let spec = d.Dataset.spec in
   let k = spec.Spec.busy_start + (spec.Spec.busy_len / 2) in
   let loads = Dataset.link_loads_at d k in
   let links = Dataset.num_links d in
   let ks = Array.of_list (Dataset.busy_samples d) in
   let ks = Array.sub ks (Array.length ks - window) window in
   let load_samples =
     Mat.init window links (fun i j -> (Dataset.link_loads_at d ks.(i)).(j))
   in
   List.iter
     (fun (name, ceiling) ->
       let m = Core.Estimator.of_name name in
       ignore (Core.Estimator.solve m ws ~loads ~load_samples);
       let iters =
         match W.last_iterations ws ~name with Some n -> n | None -> 0
       in
       guard_results := (name, iters, ceiling) :: !guard_results;
       if iters > ceiling then
         failures :=
           Printf.sprintf
             "%d pops/%s: %d iterations exceed the pinned ceiling %d"
             guard_pops name iters ceiling
           :: !failures)
     guard_ceilings;
   Printf.printf "# iteration guard at %d PoPs: %s (%.1fs)\n%!" guard_pops
     (String.concat ", "
        (List.rev_map
           (fun (name, iters, ceiling) ->
             Printf.sprintf "%s %d/%d" name iters ceiling)
           !guard_results))
     (Unix.gettimeofday () -. t0));
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (provenance ~jobs:(Pool.size pool));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"mode\": %S,\n  \"sparse_gate\": %d,\n  \"window\": %d,\n\
       \  \"assert\": \"sparse sizes keep the GC heap watermark below \
        pairs^2/2 words\",\n\
       \  \"assert_ok\": %b,\n"
       (if fast then "fast" else "full")
       Tmest_core.Workspace.sparse_gate window (!failures = []));
  Buffer.add_string buf
    (Printf.sprintf "  \"iteration_guard\": {\"pops\": %d, %s},\n" guard_pops
       (String.concat ", "
          (List.rev_map
             (fun (name, iters, ceiling) ->
               Printf.sprintf "%S: {\"iterations\": %d, \"ceiling\": %d}"
                 name iters ceiling)
             !guard_results)));
  Buffer.add_string buf "  \"sweep\": [\n";
  List.iteri
    (fun i (pops, pairs, links, sparse, name, r) ->
      let body =
        match r with
        | `Ok (seconds, mre, churn, heap, iters) ->
            Printf.sprintf
              "\"status\": \"ok\", \"seconds\": %.3f, \"mre\": %.6f, \
               \"solve_words\": %.3e, \"heap_words\": %.3e%s"
              seconds mre churn heap
              (match iters with
              | Some n -> Printf.sprintf ", \"iterations\": %d" n
              | None -> "")
        | `Excluded why -> Printf.sprintf "\"status\": \"excluded\", \"why\": %S" why
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"pops\": %d, \"pairs\": %d, \"links\": %d, \"mode\": \
            %S, \"method\": %S, %s}%s\n"
           pops pairs links
           (if sparse then "sparse" else "dense")
           name body
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let path = "BENCH_scale.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  if !failures <> [] then begin
    List.iter (Printf.eprintf "scale assertion FAILED: %s\n") !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Day-replay throughput sweep (BENCH_throughput.json)                 *)
(* ------------------------------------------------------------------ *)

(* Windows per second of the production estimation loop: replay a full
   measurement day — 288 five-minute intervals, the paper's operational
   cadence — through [Ctx.replay] at 25 and 100 PoPs, sweeping the pool
   size over {1, 2, 4, 8}.  The method is gravity + iterative
   proportional fitting ("kruithof"): the deployment-grade estimator
   whose per-window cost is low enough that scheduling and measurement
   overheads actually show (an entropy replay would hide any dispatch
   regression behind seconds of solver time).  Each jobs row re-times
   the identical replay on the same primed workspace, so the sweep
   isolates the runtime from cache-construction effects.

   The jobs=2 >= 1.2x jobs=1 windows/sec assertion only applies when
   the box has at least 2 cores; a 1-core container still runs the
   whole sweep and records [oversubscribed: true] plus a stderr
   warning instead of failing on numbers that only measure scheduler
   churn. *)
let throughput_json ~fast () =
  let module Core = Tmest_core in
  let module Workspace = Tmest_core.Workspace in
  let module Dataset = Tmest_traffic.Dataset in
  let cores = Domain.recommended_domain_count () in
  let oversubscribed = cores = 1 in
  if oversubscribed then
    Printf.eprintf
      "warning: only 1 core available — jobs > 1 rows are oversubscribed \
       and their windows/sec are not meaningful\n%!";
  let jobs_list = [ 1; 2; 4; 8 ] in
  let sizes = if fast then [ 12; 25 ] else [ 25; 100 ] in
  let windows = if fast then 24 else 288 in
  let window = 8 in
  let method_name = "kruithof" in
  let est = Core.Estimator.of_name method_name in
  let ctx = Ctx.create ~fast:true ~jobs:1 () in
  let failures = ref [] in
  let sweep =
    List.concat_map
      (fun pops ->
        let net = Ctx.synthetic ctx ~pops in
        let pairs = Dataset.num_pairs net.Ctx.dataset in
        let links = Dataset.num_links net.Ctx.dataset in
        Printf.printf "# %d PoPs: %d pairs, %d links, %d windows\n%!" pops
          pairs links windows;
        (* Prime the shared workspace artifacts once, so every jobs row
           times the steady-state estimation loop rather than paying
           first-touch cache construction in whichever row runs first. *)
        ignore
          (Ctx.Scan.run net est
             (Ctx.Scan.make (Ctx.Scan.Replay { window; windows = 1 })));
        let rows =
          List.map
            (fun jobs ->
              let pool = Pool.create ~jobs in
              Workspace.set_pool net.Ctx.workspace (Some pool);
              let t0 = Unix.gettimeofday () in
              ignore
                (Ctx.Scan.run net est
                   (Ctx.Scan.make (Ctx.Scan.Replay { window; windows })));
              let seconds = Unix.gettimeofday () -. t0 in
              Workspace.set_pool net.Ctx.workspace None;
              Pool.shutdown pool;
              let wps = float_of_int windows /. seconds in
              Printf.printf "%4d PoPs  jobs %d  %7.2fs  %8.1f windows/sec\n%!"
                pops jobs seconds wps;
              (pops, pairs, links, jobs, seconds, wps))
            jobs_list
        in
        (* Speedup floor, asserted only where a speedup can exist. *)
        if cores >= 2 then begin
          let wps_at j =
            let (_, _, _, _, _, w) =
              List.find (fun (_, _, _, jobs, _, _) -> jobs = j) rows
            in
            w
          in
          let ratio = wps_at 2 /. wps_at 1 in
          if ratio < 1.2 then
            failures :=
              Printf.sprintf
                "%d pops: jobs=2 windows/sec only %.2fx jobs=1 (floor 1.2x)"
                pops ratio
              :: !failures
        end;
        rows)
      sizes
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (provenance ~jobs:(List.fold_left Stdlib.max 1 jobs_list));
  Buffer.add_string buf
    (Printf.sprintf "  \"oversubscribed\": %b,\n" oversubscribed);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"mode\": %S,\n  \"method\": %S,\n  \"window\": %d,\n\
       \  \"windows\": %d,\n"
       (if fast then "fast" else "full")
       method_name window windows);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"assert\": \"jobs=2 windows/sec >= 1.2x jobs=1 (skipped when \
        cores = 1)\",\n\
       \  \"assert_skipped\": %b,\n  \"assert_ok\": %b,\n"
       (cores < 2) (!failures = []));
  Buffer.add_string buf "  \"sweep\": [\n";
  List.iteri
    (fun i (pops, pairs, links, jobs, seconds, wps) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"pops\": %d, \"pairs\": %d, \"links\": %d, \"jobs\": %d, \
            \"seconds\": %.3f, \"windows_per_sec\": %.2f}%s\n"
           pops pairs links jobs seconds wps
           (if i = List.length sweep - 1 then "" else ",")))
    sweep;
  Buffer.add_string buf "  ]\n}\n";
  let path = "BENCH_throughput.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  if !failures <> [] then begin
    List.iter (Printf.eprintf "throughput assertion FAILED: %s\n") !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Streaming-daemon day replay (BENCH_daemon.json)                     *)
(* ------------------------------------------------------------------ *)

(* Ticks per second and tick-latency percentiles of the streaming
   estimation daemon over a full measurement day — 288 five-minute
   intervals — at 25 and 100 PoPs, with one mid-day link flap and one
   poller dropout.  The method is kruithof, as in the throughput sweep:
   deployment-grade, cheap enough that loop overheads show.

   Two correctness assertions ride along, so the benchmark doubles as
   the acceptance check for the daemon:

   - every clean full-window tick before the first scripted fault is
     bit-identical to a batch [Ctx.Scan] over the same recovered load
     rows (the stream runs with zero jitter and zero loss here, so the
     pre-fault prefix is genuinely clean and repair is a physical
     no-op);
   - the poller-dropout ticks emit repaired estimates together with a
     health record that says the window was not clean.

   No tick may abort. *)
let daemon_json ~fast () =
  let module Core = Tmest_core in
  let module Dataset = Tmest_traffic.Dataset in
  let module Collect = Tmest_snmp.Collect in
  let module Daemon = Tmest_daemon.Daemon in
  let sizes = if fast then [ 12; 25 ] else [ 25; 100 ] in
  let ticks = if fast then 24 else 288 in
  let window = 8 in
  let method_name = "kruithof" in
  let est = Core.Estimator.of_name method_name in
  let pool = Pool.default () in
  let ctx = Ctx.create ~fast:true ~jobs:1 () in
  (* One interior-link flap mid-day, one poller dropout in the evening;
     everything before the flap is the clean identity prefix. *)
  let flap_from = ticks / 2 in
  let drop_from = 3 * ticks / 4 in
  let scenario =
    {
      Daemon.flaps = [ (0, flap_from, flap_from + 2) ];
      poller_drops = [ (1, drop_from, drop_from + 1) ];
      resets = [];
    }
  in
  let stream =
    { Collect.default_config with Collect.jitter_s = 0.; loss_prob = 0. }
  in
  let failures = ref [] in
  let rows =
    List.map
      (fun pops ->
        let d = Dataset.synthetic ~pops () in
        let pairs = Dataset.num_pairs d in
        let links = Dataset.num_links d in
        Printf.printf "# %d PoPs: %d pairs, %d links, %d ticks\n%!" pops pairs
          links ticks;
        let cfg =
          Daemon.config ~window ~ticks ~stream ~scenario ~est ()
        in
        let r = Daemon.run ~pool cfg d in
        if r.Daemon.aborted > 0 then
          failures :=
            Printf.sprintf "%d pops: %d ticks aborted" pops r.Daemon.aborted
            :: !failures;
        (* Clean-prefix bit-identity: replay the recovered rows of the
           pre-fault ticks through the batch scan and compare the
           full-window estimates bitwise. *)
        let records = Array.of_list r.Daemon.records in
        let prefix = Array.sub records 0 (Stdlib.min flap_from (Array.length records)) in
        let rows_loads = Array.map (fun t -> t.Daemon.loads) prefix in
        let net = Ctx.synthetic ctx ~pops in
        let batch =
          Ctx.Scan.run net est
            (Ctx.Scan.make (Ctx.Scan.Windows { window; loads = rows_loads }))
        in
        let identical = ref 0 in
        List.iter
          (fun (k, batch_est) ->
            (* The scan labels each step with [start + window - 1] — the
               daemon tick whose window it replays. *)
            let daemon_est = prefix.(k).Daemon.estimate in
            let same =
              Array.length batch_est = Array.length daemon_est
              && (let ok = ref true in
                  Array.iteri
                    (fun j v ->
                      if
                        Int64.bits_of_float v
                        <> Int64.bits_of_float daemon_est.(j)
                      then ok := false)
                    batch_est;
                  !ok)
            in
            if same then incr identical
            else
              failures :=
                Printf.sprintf
                  "%d pops: tick %d estimate differs from the batch scan" pops
                  k
                :: !failures)
          batch;
        let checked = List.length batch in
        Printf.printf "  clean prefix: %d/%d full-window ticks bit-identical \
                       to the batch scan\n%!"
          !identical checked;
        (* Faulted ticks: repaired estimate plus a non-clean health
           record on every poller-dropout tick. *)
        Array.iter
          (fun (t : Daemon.tick_record) ->
            if t.Daemon.tick >= drop_from && t.Daemon.tick <= drop_from + 1
            then begin
              if t.Daemon.missing = 0 then
                failures :=
                  Printf.sprintf "%d pops: dropout tick %d lost no polls" pops
                    t.Daemon.tick
                  :: !failures;
              match t.Daemon.health with
              | Some h when not h.Core.Degrade.clean ->
                  if not (Array.for_all Float.is_finite t.Daemon.estimate)
                  then
                    failures :=
                      Printf.sprintf
                        "%d pops: dropout tick %d estimate not finite" pops
                        t.Daemon.tick
                      :: !failures
              | _ ->
                  failures :=
                    Printf.sprintf
                      "%d pops: dropout tick %d has no non-clean health \
                       record"
                      pops t.Daemon.tick
                    :: !failures
            end)
          records;
        Printf.printf
          "%4d PoPs  %8.1f ticks/s  p50 %.2f ms  p99 %.2f ms  %d epochs\n%!"
          pops r.Daemon.ticks_per_sec r.Daemon.p50_ms r.Daemon.p99_ms
          r.Daemon.epochs;
        (pops, pairs, links, r, !identical, checked))
      sizes
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (provenance ~jobs:(Pool.size pool));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"mode\": %S,\n  \"method\": %S,\n  \"window\": %d,\n\
       \  \"ticks\": %d,\n"
       (if fast then "fast" else "full")
       method_name window ticks);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scenario\": {\"flap_link\": [0, %d, %d], \"drop_poller\": [1, \
        %d, %d]},\n"
       flap_from (flap_from + 2) drop_from (drop_from + 1));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"assert\": \"no aborted ticks; clean full-window prefix ticks \
        bit-identical to the batch scan; dropout ticks repaired with \
        non-clean health records\",\n\
       \  \"assert_ok\": %b,\n"
       (!failures = []));
  Buffer.add_string buf "  \"sweep\": [\n";
  List.iteri
    (fun i (pops, pairs, links, (r : Daemon.result), identical, checked) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"pops\": %d, \"pairs\": %d, \"links\": %d, \"ticks\": %d, \
            \"aborted\": %d, \"epochs\": %d, \"ticks_per_sec\": %.2f, \
            \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"polls_lost\": %d, \
            \"identical_prefix_ticks\": %d, \"checked_prefix_ticks\": %d}%s\n"
           pops pairs links r.Daemon.ticks r.Daemon.aborted r.Daemon.epochs
           r.Daemon.ticks_per_sec r.Daemon.p50_ms r.Daemon.p99_ms
           r.Daemon.polls_lost identical checked
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let path = "BENCH_daemon.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  if !failures <> [] then begin
    List.iter (Printf.eprintf "daemon assertion FAILED: %s\n") !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel performance suite                                          *)
(* ------------------------------------------------------------------ *)

let kernel_tests () =
  let open Bechamel in
  let module Mat = Tmest_linalg.Mat in
  let module Vec = Tmest_linalg.Vec in
  let module Csr = Tmest_linalg.Csr in
  let rng = Tmest_stats.Rng.create 11 in
  let mat n m = Mat.init n m (fun _ _ -> Tmest_stats.Rng.float rng) in
  let a200 = mat 200 200 in
  let b200 = mat 200 200 in
  let v200 = Array.init 200 (fun _ -> Tmest_stats.Rng.float rng) in
  let spd = Mat.add (Mat.gram (mat 120 120)) (Mat.identity 120) in
  let rhs = Array.init 120 (fun _ -> Tmest_stats.Rng.float rng) in
  let eu = Tmest_traffic.Dataset.europe () in
  let r_eu = eu.Tmest_traffic.Dataset.routing in
  let demand =
    Tmest_traffic.Dataset.demand_at eu 229
  in
  let w200 = Array.init 200 (fun _ -> Tmest_stats.Rng.float rng) in
  let dst200 = Vec.zeros 200 in
  let dst_mv = Vec.zeros 200 in
  let r_eu_csr = r_eu.Tmest_net.Routing.matrix in
  let link_buf = Vec.zeros (Csr.rows r_eu_csr) in
  let ws_eu = Tmest_core.Workspace.create r_eu in
  let loads_eu = Tmest_net.Routing.link_loads r_eu demand in
  let dirty_eu =
    Tmest_faults.Inject.loads
      (Tmest_faults.Inject.make ~seed:5
         ~noise:(Tmest_faults.Inject.Gaussian 0.02) ~drop_prob:0.05 ())
      ~loads:loads_eu
  in
  ignore (Tmest_core.Workspace.gram_chol ws_eu);
  [
    Test.make ~name:"mat200.matmul" (Staged.stage (fun () ->
        Mat.matmul a200 b200));
    Test.make ~name:"mat200.matvec" (Staged.stage (fun () ->
        Mat.matvec a200 v200));
    Test.make ~name:"mat200.matvec_into" (Staged.stage (fun () ->
        Mat.matvec_into a200 v200 ~dst:dst_mv));
    Test.make ~name:"vec200.axpy" (Staged.stage (fun () ->
        Vec.axpy 1.5 v200 w200));
    Test.make ~name:"vec200.axpy_into" (Staged.stage (fun () ->
        Vec.axpy_into 1.5 v200 w200 ~dst:dst200));
    Test.make ~name:"chol120.factor+solve" (Staged.stage (fun () ->
        Tmest_linalg.Chol.solve_system spd rhs));
    Test.make ~name:"lu120.factor+solve" (Staged.stage (fun () ->
        Tmest_linalg.Lu.solve_system spd rhs));
    Test.make ~name:"csr.europe.link_loads" (Staged.stage (fun () ->
        Tmest_net.Routing.link_loads r_eu demand));
    Test.make ~name:"csr.europe.matvec_into" (Staged.stage (fun () ->
        Csr.matvec_into r_eu_csr demand ~dst:link_buf));
    Test.make ~name:"lambert.w0" (Staged.stage (fun () ->
        Tmest_stats.Lambert.w0 12.3));
    (* Degraded-mode overhead: the clean pass is the per-solve tax when
       nothing is wrong; the dirty pass adds the masked re-factor. *)
    Test.make ~name:"degrade.europe.clean" (Staged.stage (fun () ->
        Tmest_core.Degrade.repair Tmest_core.Degrade.default ws_eu
          ~loads:loads_eu ()));
    Test.make ~name:"degrade.europe.dirty" (Staged.stage (fun () ->
        Tmest_core.Degrade.repair Tmest_core.Degrade.default ws_eu
          ~loads:dirty_eu ()));
  ]

(* Dispatch overhead of the pool primitives themselves: noop bodies, so
   the numbers are pure submit/collect cost.  [parallel_for] prices the
   batched submission path (one lock acquisition and broadcast per
   call, with the participate closure allocated once — not once per
   copy); [iter_chunks] adds the chunk-bounds bookkeeping;
   [iter_grained] the grain-model arithmetic, once with a cost below
   the grain (stays inline, no dispatch at all) and once far above it
   (splits and pays the full fan-out). *)
let pool_tests () =
  let open Bechamel in
  let pool = Pool.create ~jobs:2 in
  [
    Test.make ~name:"pool2.parallel_for_n64"
      (Staged.stage (fun () -> Pool.parallel_for pool ~n:64 (fun _ -> ())));
    Test.make ~name:"pool2.iter_chunks_n64"
      (Staged.stage (fun () ->
           Pool.iter_chunks pool ~n:64 (fun ~chunk:_ ~lo:_ ~hi:_ -> ())));
    Test.make ~name:"pool2.iter_grained_inline"
      (Staged.stage (fun () ->
           Pool.iter_grained pool ~n:64 ~cost:64 (fun ~lo:_ ~hi:_ -> ())));
    Test.make ~name:"pool2.iter_grained_split"
      (Staged.stage (fun () ->
           Pool.iter_grained pool ~n:64 ~cost:1_000_000 (fun ~lo:_ ~hi:_ -> ())));
  ]

(* Full fixed-iteration solves on a 200-dim SPD quadratic with
   preallocated scratch: the allocation column should read ~0 words/run
   beyond the one result copy. *)
let solver_tests () =
  let open Bechamel in
  let module Mat = Tmest_linalg.Mat in
  let module Vec = Tmest_linalg.Vec in
  let module Fista = Tmest_opt.Fista in
  let module Proxgrad = Tmest_opt.Proxgrad in
  let module Cg = Tmest_opt.Cg in
  let rng = Tmest_stats.Rng.create 23 in
  let dim = 200 in
  let a =
    Mat.add
      (Mat.gram (Mat.init dim dim (fun _ _ -> Tmest_stats.Rng.float rng)))
      (Mat.identity dim)
  in
  let b = Array.init dim (fun _ -> Tmest_stats.Rng.float rng) in
  let lip = Fista.lipschitz_of_gram a in
  let gradient_into x ~dst =
    Mat.matvec_into a x ~dst;
    Vec.sub_into dst b ~dst
  in
  let fista_scratch = Array.init Fista.scratch_size (fun _ -> Vec.zeros dim) in
  let pg_scratch = Array.init Proxgrad.scratch_size (fun _ -> Vec.zeros dim) in
  let cg_scratch = Array.init Cg.scratch_size (fun _ -> Vec.zeros dim) in
  let prior = Vec.ones dim in
  let stop64 = Tmest_opt.Stop.make ~max_iter:64 ~tol:0. () in
  [
    Test.make ~name:"fista200.solve_into_x64" (Staged.stage (fun () ->
        Fista.solve_into ~stop:stop64 ~scratch:fista_scratch ~dim
          ~gradient_into ~lipschitz:lip ()));
    Test.make ~name:"proxgrad200.solve_into_x64" (Staged.stage (fun () ->
        Proxgrad.solve_into ~stop:stop64 ~scratch:pg_scratch ~dim
          ~gradient_into
          ~prox_into:(Proxgrad.kl_prox_into ~weight:0.1 ~prior)
          ~lipschitz:lip ()));
    Test.make ~name:"cg200.solve_into_x64" (Staged.stage (fun () ->
        Cg.solve_into ~stop:stop64 ~scratch:cg_scratch
          ~apply_into:(fun v ~dst -> Mat.matvec_into a v ~dst)
          ~b ()));
  ]

let experiment_tests () =
  let open Bechamel in
  (* One Test.make per paper table/figure: the full pipeline on the
     reduced context so a single run stays sub-second. *)
  let ctx = Ctx.create ~fast:true () in
  List.map
    (fun e ->
      Test.make ~name:("exp." ^ e.Registry.id)
        (Staged.stage (fun () -> ignore (e.Registry.run ctx))))
    Registry.all

(* Bechamel's stock [minor_allocated] reads [Gc.quick_stat], which on
   OCaml 5 only refreshes [minor_words] at minor collections — small
   per-run allocation rates are invisible to it.  [Gc.minor_words ()]
   reads the domain-local allocation pointer and is exact. *)
module Precise_minor_words = struct
  type witness = unit

  let load () = ()
  let unload () = ()
  let make () = ()
  let get () = Gc.minor_words ()
  let label () = "minor-words"
  let unit () = "mnw"
end

let minor_words_instance =
  let open Bechamel in
  Measure.instance
    (module Precise_minor_words)
    (Measure.register (module Precise_minor_words))

let run_perf ~fast () =
  let open Bechamel in
  (* [--fast] is the CI smoke mode: kernels and solvers only (no
     experiment pipelines) under a small measurement quota. *)
  let tests =
    Test.make_grouped ~name:"tmest" ~fmt:"%s.%s"
      (kernel_tests () @ solver_tests () @ pool_tests ()
      @ (if fast then [] else experiment_tests ()))
  in
  let cfg =
    if fast then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.1) ~kde:None ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None ()
  in
  let instances = [ minor_words_instance; Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  let times = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let allocs = Analyze.all ols minor_words_instance raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) times [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let estimate tbl name =
    match Hashtbl.find_opt tbl name with
    | Some o -> (
        match Analyze.OLS.estimates o with Some (x :: _) -> Some x | _ -> None)
    | None -> None
  in
  Printf.printf "%-32s %14s %18s\n" "benchmark" "time/run" "minor words/run";
  List.iter
    (fun (name, _) ->
      let time =
        match estimate times name with
        | Some ns ->
            if ns > 1e9 then Printf.sprintf "%8.2f  s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
            else Printf.sprintf "%8.0f ns" ns
        | None -> "n/a"
      in
      let alloc =
        match estimate allocs name with
        | Some w -> Printf.sprintf "%14.0f w" w
        | None -> "n/a"
      in
      Printf.printf "%-32s %14s %18s\n" name time alloc)
    rows

let () =
  let fast = ref false in
  let perf = ref false in
  let scale = ref false in
  let throughput = ref false in
  let daemon = ref false in
  let only = ref None in
  let list = ref false in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
        fast := true;
        parse rest
    | "--perf" :: rest ->
        perf := true;
        parse rest
    | "--scale" :: rest ->
        scale := true;
        parse rest
    | "--throughput" :: rest ->
        throughput := true;
        parse rest
    | "--daemon" :: rest ->
        daemon := true;
        parse rest
    | "--list" :: rest ->
        list := true;
        parse rest
    | "--only" :: ids :: rest ->
        only := Some (String.split_on_char ',' ids);
        parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j > 0 -> Pool.set_default_jobs j
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
            exit 2);
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: main.exe [--fast] [--perf] [--scale] [--throughput] \
           [--daemon] [--list] [--jobs N] [--only id,id,...]\n\
           unknown argument: %s\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list then
    List.iter
      (fun e -> Printf.printf "%-6s %s\n" e.Registry.id e.Registry.title)
      Registry.all
  else if !daemon then daemon_json ~fast:!fast ()
  else if !throughput then throughput_json ~fast:!fast ()
  else if !scale then scale_json ~fast:!fast ()
  else if !perf then begin
    if not !fast then workspace_json ();
    solvers_json ~fast:!fast ();
    parallel_json ~fast:!fast ();
    run_perf ~fast:!fast ()
  end
  else run_reports ~fast:!fast ~only:!only ()
